//! # kiss-samples
//!
//! Classic concurrency algorithms and bug shapes, written in KISS-C
//! with ground-truth verdicts — a benchmark suite in the spirit of the
//! pthread litmus tasks used by later sequentialization tools (the
//! CSeq family that grew out of this paper's technique).
//!
//! Every sample records whether an assertion failure is reachable under
//! free interleaving ([`Sample::buggy`]); the test suite checks the
//! exhaustive explorer against that ground truth, and checks that KISS
//! never reports an error on a correct sample (the "no false errors"
//! half of Theorem 1, on real algorithms).

use kiss_lang::Program;

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Short identifier.
    pub name: &'static str,
    /// What the sample demonstrates.
    pub description: &'static str,
    /// KISS-C source.
    pub source: &'static str,
    /// Ground truth: is an assertion failure reachable under free
    /// interleaving?
    pub buggy: bool,
    /// Is the failing execution (if any) balanced — i.e. within KISS's
    /// theoretical coverage (with sufficient `MAX`)?
    pub balanced_bug: bool,
}

impl Sample {
    /// Parses the sample.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source is invalid (covered by tests).
    pub fn program(&self) -> Program {
        kiss_lang::parse_and_lower(self.source)
            .unwrap_or_else(|e| panic!("sample {} does not parse: {e}", self.name))
    }
}

/// The suite.
pub fn all() -> Vec<Sample> {
    vec![
        PETERSON,
        PETERSON_BROKEN,
        BOUNDED_BUFFER,
        BOUNDED_BUFFER_RACY,
        BARRIER,
        DCL_CORRECT,
        DCL_BROKEN,
        TICKET_LOCK,
        DEKKER,
        RW_LOCK,
    ]
}

/// Peterson's mutual-exclusion protocol, correctly implemented: the
/// critical sections never overlap.
pub const PETERSON: Sample = Sample {
    name: "peterson",
    description: "Peterson's algorithm; mutual exclusion holds",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int flag0;
        int flag1;
        int turn;
        int in_critical;

        void worker1() {
            flag1 = 1;
            turn = 0;
            while (flag0 == 1 && turn == 0) { skip; }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            flag1 = 0;
        }

        void main() {
            async worker1();
            flag0 = 1;
            turn = 1;
            while (flag1 == 1 && turn == 1) { skip; }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            flag0 = 0;
        }
    "#,
};

/// Peterson with the `turn` assignment dropped on one side: both
/// threads can enter the critical section.
pub const PETERSON_BROKEN: Sample = Sample {
    name: "peterson-broken",
    description: "Peterson without the turn handoff; mutual exclusion fails",
    buggy: true,
    balanced_bug: true,
    source: r#"
        int flag0;
        int flag1;
        int turn;
        int in_critical;

        void worker1() {
            flag1 = 1;
            // BUG: forgot `turn = 0;`
            while (flag0 == 1 && turn == 0) { skip; }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            flag1 = 0;
        }

        void main() {
            turn = 0;
            async worker1();
            flag0 = 1;
            turn = 1;
            while (flag1 == 1 && turn == 1) { skip; }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            flag0 = 0;
        }
    "#,
};

/// Two producers add to a lock-protected total; once both have
/// signalled completion (inside the same critical section), the sum is
/// exact.
pub const BOUNDED_BUFFER: Sample = Sample {
    name: "locked-producers",
    description: "lock-protected producers; total is exact",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int l;
        int total;
        int done;

        void producer() {
            atomic { assume l == 0; l = 1; }
            total = total + 7;
            done = done + 1;
            atomic { l = 0; }
        }

        void main() {
            async producer();
            async producer();
            assume done == 2;
            assert total == 14;
        }
    "#,
};

/// The same producers without the lock and with a split
/// read-modify-write: one update can be lost.
pub const BOUNDED_BUFFER_RACY: Sample = Sample {
    name: "racy-producers",
    description: "unlocked split increment; a lost update halves the total",
    buggy: true,
    balanced_bug: true,
    source: r#"
        int total;
        int done;

        void producer() {
            int t;
            t = total;
            total = t + 7;
            done = done + 1;
        }

        void main() {
            async producer();
            async producer();
            assume done == 2;
            assert total == 14;
        }
    "#,
};

/// A sense-reversing barrier for two threads: no thread proceeds until
/// both arrive.
pub const BARRIER: Sample = Sample {
    name: "barrier",
    description: "two-thread barrier; post-barrier sees both pre-barrier writes",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int l;
        int arrived;
        bool go;
        int a;
        int b;

        void worker() {
            int last;
            a = 1;
            atomic { assume l == 0; l = 1; }
            arrived = arrived + 1;
            last = arrived;
            atomic { l = 0; }
            if (last == 2) { go = true; }
            assume go;
            assert b == 1;
        }

        void main() {
            int last;
            async worker();
            b = 1;
            atomic { assume l == 0; l = 1; }
            arrived = arrived + 1;
            last = arrived;
            atomic { l = 0; }
            if (last == 2) { go = true; }
            assume go;
            assert a == 1;
        }
    "#,
};

/// Double-checked initialization done right (data written before the
/// flag, all under the lock).
pub const DCL_CORRECT: Sample = Sample {
    name: "dcl-correct",
    description: "double-checked locking, data before flag; reader sees full init",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int l;
        int initialized;
        int data;

        void use_it() {
            if (initialized == 0) {
                atomic { assume l == 0; l = 1; }
                if (initialized == 0) {
                    data = 42;
                    initialized = 1;
                }
                atomic { l = 0; }
            }
            if (initialized == 1) { assert data == 42; }
        }

        void main() {
            async use_it();
            use_it();
        }
    "#,
};

/// Double-checked locking with the flag published *before* the data —
/// the classic broken variant.
pub const DCL_BROKEN: Sample = Sample {
    name: "dcl-broken",
    description: "double-checked locking, flag before data; reader sees torn init",
    buggy: true,
    balanced_bug: true,
    source: r#"
        int l;
        int initialized;
        int data;

        void use_it() {
            if (initialized == 0) {
                atomic { assume l == 0; l = 1; }
                if (initialized == 0) {
                    initialized = 1;   // BUG: published before data
                    data = 42;
                }
                atomic { l = 0; }
            }
            if (initialized == 1) { assert data == 42; }
        }

        void main() {
            async use_it();
            use_it();
        }
    "#,
};

/// A ticket lock: take a ticket, wait for your turn; the protected
/// counter never tears.
pub const TICKET_LOCK: Sample = Sample {
    name: "ticket-lock",
    description: "ticket lock built from an atomic fetch-and-add",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int next_ticket;
        int now_serving;
        int shared;
        bool done1;

        void worker() {
            int my;
            atomic { my = next_ticket; next_ticket = next_ticket + 1; }
            assume now_serving == my;
            shared = shared + 1;
            now_serving = now_serving + 1;
            done1 = true;
        }

        void main() {
            int my;
            async worker();
            atomic { my = next_ticket; next_ticket = next_ticket + 1; }
            assume now_serving == my;
            shared = shared + 1;
            now_serving = now_serving + 1;
            if (done1) { assert shared == 2; }
        }
    "#,
};

/// Dekker's algorithm (the first mutual-exclusion protocol), correct.
pub const DEKKER: Sample = Sample {
    name: "dekker",
    description: "Dekker's algorithm; mutual exclusion holds",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int want0;
        int want1;
        int turn;
        int in_critical;

        void worker1() {
            want1 = 1;
            while (want0 == 1) {
                if (turn != 1) {
                    want1 = 0;
                    while (turn != 1) { skip; }
                    want1 = 1;
                }
            }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            turn = 0;
            want1 = 0;
        }

        void main() {
            async worker1();
            want0 = 1;
            while (want1 == 1) {
                if (turn != 0) {
                    want0 = 0;
                    while (turn != 0) { skip; }
                    want0 = 1;
                }
            }
            in_critical = in_critical + 1;
            assert in_critical == 1;
            in_critical = in_critical - 1;
            turn = 1;
            want0 = 0;
        }
    "#,
};

/// A reader-count lock: writers take the mutex, readers gate through a
/// count protected by the same mutex; a reader never observes a torn
/// pair.
pub const RW_LOCK: Sample = Sample {
    name: "rw-lock",
    description: "reader-count lock; readers see consistent pairs",
    buggy: false,
    balanced_bug: false,
    source: r#"
        int m;
        int readers;
        int a;
        int b;

        void writer() {
            atomic { assume m == 0; m = 1; }
            assume readers == 0;
            a = 1;
            b = 1;
            atomic { m = 0; }
        }

        void main() {
            int x;
            int y;
            async writer();
            atomic { assume m == 0; m = 1; }
            readers = readers + 1;
            atomic { m = 0; }
            x = a;
            y = b;
            atomic { assume m == 0; m = 1; }
            readers = readers - 1;
            atomic { m = 0; }
            assert x == y || x < y;
        }
    "#,
};

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_conc::{Explorer, ScheduleMode};
    use kiss_core::checker::Kiss;
    use kiss_exec::Module;

    #[test]
    fn all_samples_parse() {
        for s in all() {
            let p = s.program();
            assert!(!p.funcs.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn ground_truth_matches_exhaustive_exploration() {
        for s in all() {
            let module = Module::lower(s.program());
            let v = Explorer::new(&module).with_budget(30_000_000, 3_000_000).check();
            assert_eq!(
                v.is_fail(),
                s.buggy,
                "{}: ground truth mismatch ({v:?})",
                s.name
            );
        }
    }

    #[test]
    fn kiss_never_reports_false_errors_on_the_suite() {
        for s in all() {
            for max_ts in [0, 1, 2] {
                let outcome = Kiss::new()
                    .with_max_ts(max_ts)
                    .with_validation(false)
                    .check_assertions(&s.program());
                if outcome.found_error() {
                    assert!(s.buggy, "{} (MAX={max_ts}): false error {outcome:?}", s.name);
                }
            }
        }
    }

    #[test]
    fn kiss_finds_every_balanced_bug_at_max_2() {
        for s in all().into_iter().filter(|s| s.buggy && s.balanced_bug) {
            let outcome = Kiss::new().with_max_ts(2).check_assertions(&s.program());
            assert!(outcome.found_error(), "{}: KISS must find this balanced bug: {outcome:?}", s.name);
            if let kiss_core::checker::KissOutcome::AssertionViolation(r) = outcome {
                assert_eq!(r.validated, Some(true), "{}: replay must confirm", s.name);
            }
        }
    }

    #[test]
    fn balanced_bugs_are_indeed_balanced() {
        for s in all().into_iter().filter(|s| s.buggy) {
            let module = Module::lower(s.program());
            let v = Explorer::new(&module)
                .with_mode(ScheduleMode::Balanced)
                .with_budget(30_000_000, 3_000_000)
                .check();
            assert_eq!(v.is_fail(), s.balanced_bug, "{}: balanced-coverage mismatch", s.name);
        }
    }

    #[test]
    fn correct_lock_algorithms_protect_under_context_bounding() {
        // Sanity: the correct samples stay correct even under the
        // cheaper context-bounded search (no false positives there
        // either).
        for s in all().into_iter().filter(|s| !s.buggy) {
            let module = Module::lower(s.program());
            let v = Explorer::new(&module)
                .with_mode(ScheduleMode::ContextBound(3))
                .with_budget(30_000_000, 3_000_000)
                .check();
            assert!(v.is_pass(), "{}: {v:?}", s.name);
        }
    }
}
