//! Breadth-first variant of the explicit-state checker: finds a
//! counterexample of **minimal branch depth**.
//!
//! The DFS engine ([`crate::explicit`]) returns the first error it
//! stumbles into, which can be needlessly long; model checkers like
//! SLAM put effort into short traces because humans read them. This
//! engine explores configurations in breadth-first order over
//! *decision points* (nondeterministic branches and loop entries) and
//! reconstructs the trace through a parent map.
//!
//! The BFS frontier stores whole configurations, so it trades memory
//! for trace quality; prefer the DFS engine for pure verdicts.
//!
//! State bookkeeping lives behind [`StoreKind`]: the default `cow`
//! store keys an open-addressing [`VisitedTable`] on **split
//! fingerprints** (the shared part of a branch's alternatives is hashed
//! once, each alternative finishes in O(1)), indexes the parent map by
//! dense [`StateId`]s, and interns the per-edge trace segments — the
//! `schedule()` preambles repeat heavily, so the historical owned
//! `Vec<TraceStep>` clone per edge stored the same steps once per edge
//! instead of once per distinct segment. `legacy` keeps the historical
//! `HashSet` + owned-clone storage as the equivalence oracle.

use std::collections::{HashMap, HashSet, VecDeque};

use kiss_exec::{eval, Env as _, Instr, Module, Value};
use kiss_obs::Obs;

use crate::budget::{BoundReason, Budget, Meter, BYTES_PER_FINGERPRINT};
use crate::cancel::CancelToken;
use crate::config::{Config, Frame, SeqEnv};
use crate::explicit::resolve_target;
use crate::stats::EngineStats;
use crate::store::{SegId, SegmentInterner, StateId, StoreKind, VisitedTable};
use crate::verdict::{ErrorTrace, TraceStep, Verdict};

/// Parent map over decision points: child fingerprint ->
/// (parent fingerprint, steps taken between them).
type ParentMap = HashMap<(u64, u64), ((u64, u64), Vec<TraceStep>)>;

/// A frontier node's handle into the active store.
#[derive(Clone, Copy)]
enum NodeKey {
    /// Legacy store: the node's full fingerprint.
    Fp(u64, u64),
    /// Cow store: the node's dense id in the visited table.
    Id(StateId),
}

/// The per-run state storage, selected by [`StoreKind`].
enum BfsStore {
    Legacy {
        visited: HashSet<(u64, u64)>,
        parents: ParentMap,
    },
    Cow {
        visited: VisitedTable,
        /// Indexed by [`StateId`]; the root is its own parent.
        parents: Vec<(StateId, SegId)>,
        interner: SegmentInterner,
    },
}

impl BfsStore {
    fn len(&self) -> usize {
        match self {
            BfsStore::Legacy { visited, .. } => visited.len(),
            BfsStore::Cow { visited, .. } => visited.len(),
        }
    }

    /// Bytes held by visited + parent storage: exact for the cow
    /// store, the historical estimate plus owned-segment sizes for
    /// legacy.
    fn bytes(&self) -> usize {
        match self {
            BfsStore::Legacy { visited, parents } => {
                visited.len() * BYTES_PER_FINGERPRINT
                    + parents
                        .values()
                        .map(|(_, steps)| {
                            BYTES_PER_FINGERPRINT
                                + steps.capacity() * std::mem::size_of::<TraceStep>()
                        })
                        .sum::<usize>()
            }
            BfsStore::Cow { visited, parents, interner } => {
                visited.bytes()
                    + parents.capacity() * std::mem::size_of::<(StateId, SegId)>()
                    + interner.bytes()
            }
        }
    }
}

/// The breadth-first checker.
#[derive(Debug, Clone)]
pub struct BfsChecker<'a> {
    module: &'a Module,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
    store: StoreKind,
}

impl<'a> BfsChecker<'a> {
    /// Creates a checker over a lowered module.
    pub fn new(module: &'a Module) -> Self {
        BfsChecker {
            module,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
            store: StoreKind::default(),
        }
    }

    /// Selects the state-storage implementation.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cancellation token polled from the search loop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the search emits throttled progress and
    /// budget-violation events through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the check; a `Fail` verdict carries a minimal-depth trace.
    pub fn check(&self) -> Verdict {
        self.check_with_stats().0
    }

    /// Runs the check, also returning statistics.
    pub fn check_with_stats(&self) -> (Verdict, EngineStats) {
        // The frontier stores whole configurations; charge a coarse
        // per-state estimate well above a bare fingerprint.
        let mut meter = Meter::new(self.budget, self.cancel.clone())
            .with_state_size(256)
            .with_observer(self.obs.clone(), "bfs");
        let mut frontier_peak = 1usize;
        let root = Config::initial(self.module);
        let mut frontier: VecDeque<(Config, NodeKey)> = VecDeque::new();
        let mut store = match self.store {
            StoreKind::Legacy => {
                let root_fp = root.fingerprint();
                let mut visited = HashSet::new();
                visited.insert(root_fp);
                frontier.push_back((root, NodeKey::Fp(root_fp.0, root_fp.1)));
                BfsStore::Legacy { visited, parents: HashMap::new() }
            }
            StoreKind::Cow => {
                let root_fp = root.fingerprint_base().with_pc(root.top_pc());
                let mut visited = VisitedTable::new();
                let (root_id, _) = visited.insert(root_fp);
                frontier.push_back((root, NodeKey::Id(root_id)));
                BfsStore::Cow {
                    visited,
                    // The root is its own parent — the reconstruction
                    // walk's termination sentinel.
                    parents: vec![(root_id, SegId::EMPTY)],
                    interner: SegmentInterner::new(),
                }
            }
        };

        let stats = |meter: &Meter, store: &BfsStore, frontier_peak: usize| EngineStats {
            steps: meter.usage.steps,
            states: store.len(),
            frontier_peak,
            states_stored: store.len(),
            store_bytes: store.bytes(),
            ..EngineStats::default()
        };

        // Segment steps accumulate into one scratch buffer reused
        // across segments instead of a fresh allocation per segment.
        let mut steps: Vec<TraceStep> = Vec::with_capacity(64);
        while let Some((config, key)) = frontier.pop_front() {
            // Run the segment to the next decision point (or to an
            // end), collecting its steps.
            match self.run_segment(config, &mut meter, &mut steps) {
                SegmentEnd::Budget(reason) => {
                    return (
                        Verdict::ResourceBound {
                            steps: meter.usage.steps,
                            states: meter.usage.states,
                            reason,
                        },
                        stats(&meter, &store, frontier_peak),
                    )
                }
                SegmentEnd::Error(mk) => {
                    let trace = Self::reconstruct(&store, key, std::mem::take(&mut steps));
                    return (mk(trace), stats(&meter, &store, frontier_peak));
                }
                SegmentEnd::Done => {}
                SegmentEnd::Branch(mut config) => {
                    // The config is parked on its NondetJump; the
                    // alternatives differ only in the top pc, so each
                    // is fingerprinted *before* it exists — by steering
                    // the parked config's pc — and only genuinely new
                    // states pay for a clone.
                    let frame = config.stack.last().expect("nonempty at a branch");
                    let body = self.module.body(frame.func);
                    let Instr::NondetJump(targets) = &body.instrs[frame.pc] else {
                        unreachable!("Branch ends only at a NondetJump")
                    };
                    match &mut store {
                        BfsStore::Legacy { visited, parents } => {
                            let NodeKey::Fp(f0, f1) = key else {
                                unreachable!("legacy store hands out Fp keys")
                            };
                            for &t in targets {
                                config.stack.last_mut().expect("nonempty").pc = t;
                                let afp = config.fingerprint();
                                if visited.insert(afp) {
                                    meter.note_states(visited.len());
                                    parents.insert(afp, ((f0, f1), steps.clone()));
                                    frontier
                                        .push_back((config.clone(), NodeKey::Fp(afp.0, afp.1)));
                                }
                            }
                        }
                        BfsStore::Cow { visited, parents, interner } => {
                            let NodeKey::Id(parent_id) = key else {
                                unreachable!("cow store hands out Id keys")
                            };
                            // Hash the shared part once; intern the edge
                            // segment only when some alternative is new.
                            // The last new alternative inherits the
                            // parked config instead of cloning it.
                            let base = config.fingerprint_base();
                            let mut seg = None;
                            let mut pending = None;
                            for &t in targets {
                                let afp = base.with_pc(t);
                                let (id, new) = visited.insert(afp);
                                if new {
                                    meter.note_states(visited.len());
                                    debug_assert_eq!(parents.len(), id.0 as usize);
                                    let seg =
                                        *seg.get_or_insert_with(|| interner.intern(&steps));
                                    parents.push((parent_id, seg));
                                    if let Some((pt, pid)) = pending.replace((t, id)) {
                                        let mut c = config.clone();
                                        c.stack.last_mut().expect("nonempty").pc = pt;
                                        frontier.push_back((c, NodeKey::Id(pid)));
                                    }
                                }
                            }
                            if let Some((pt, pid)) = pending {
                                config.stack.last_mut().expect("nonempty").pc = pt;
                                frontier.push_back((config, NodeKey::Id(pid)));
                            }
                        }
                    }
                    frontier_peak = frontier_peak.max(frontier.len());
                }
            }
            if let Some(reason) = meter.over_budget() {
                return (
                    Verdict::ResourceBound {
                        steps: meter.usage.steps,
                        states: meter.usage.states,
                        reason,
                    },
                    stats(&meter, &store, frontier_peak),
                );
            }
        }
        (Verdict::Pass, stats(&meter, &store, frontier_peak))
    }

    /// Rebuilds the full trace for the node at `key` by walking parent
    /// edges back to the root — lazily, only when a violation is
    /// actually reported.
    fn reconstruct(store: &BfsStore, key: NodeKey, tail: Vec<TraceStep>) -> ErrorTrace {
        let steps = match (store, key) {
            (BfsStore::Legacy { parents, .. }, NodeKey::Fp(f0, f1)) => {
                let mut fp = (f0, f1);
                let mut segments = vec![tail];
                while let Some((parent, steps)) = parents.get(&fp) {
                    segments.push(steps.clone());
                    fp = *parent;
                }
                segments.reverse();
                segments.concat()
            }
            (BfsStore::Cow { parents, interner, .. }, NodeKey::Id(mut id)) => {
                let mut segments: Vec<SegId> = Vec::new();
                loop {
                    let (parent, seg) = parents[id.0 as usize];
                    if parent == id {
                        break;
                    }
                    segments.push(seg);
                    id = parent;
                }
                let total: usize =
                    segments.iter().map(|&s| interner.get(s).len()).sum();
                let mut steps = Vec::with_capacity(total + tail.len());
                for &seg in segments.iter().rev() {
                    steps.extend_from_slice(interner.get(seg));
                }
                steps.extend(tail);
                steps
            }
            _ => unreachable!("store and key kinds always match"),
        };
        ErrorTrace { steps, globals: Vec::new() }
    }

    /// Runs deterministically until the next NondetJump (returning the
    /// successor configs), an error, an end, or the budget. The
    /// executed steps land in `steps` (cleared first), which the caller
    /// reuses across segments.
    ///
    /// Like the DFS engine, instructions are borrowed from the module
    /// body instead of cloned per executed step — `Call` argument lists
    /// and `NondetJump` target vectors are heap-backed.
    fn run_segment(
        &self,
        mut config: Config,
        meter: &mut Meter,
        steps: &mut Vec<TraceStep>,
    ) -> SegmentEnd {
        let module = self.module;
        steps.clear();
        loop {
            let Some(frame) = config.stack.last() else {
                return SegmentEnd::Done;
            };
            if let Err(reason) = meter.tick() {
                return SegmentEnd::Budget(reason);
            }
            let func = frame.func;
            let pc = frame.pc;
            let body = module.body(func);
            let meta = body.meta[pc];
            steps.push(TraceStep { func, pc, origin: meta.origin, span: meta.span });
            match &body.instrs[pc] {
                Instr::Assign(place, rv) => {
                    let mut env = SeqEnv { module, config: &mut config };
                    if let Err(e) = eval::exec_assign(&mut env, place, rv) {
                        return SegmentEnd::Error(
                            Box::new(move |t| Verdict::RuntimeError(e, t)),
                        );
                    }
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
                Instr::Assert(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Error(Box::new(Verdict::Fail)),
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Assume(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Done,
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Call { dest, target, args } => {
                    // One env borrow resolves the callee and evaluates
                    // the arguments together.
                    let resolved = {
                        let env = SeqEnv { module, config: &mut config };
                        resolve_target(&env, *target).map(|callee| {
                            let arg_vals: Vec<Value> =
                                args.iter().map(|a| eval::eval_operand(&env, a)).collect();
                            (callee, arg_vals)
                        })
                    };
                    match resolved {
                        Ok((callee, arg_vals)) => {
                            config.stack.last_mut().expect("nonempty").pc += 1;
                            config.stack.push(Frame::enter(module, callee, &arg_vals, *dest));
                        }
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Async { .. } => {
                    let e = kiss_exec::ExecError::AsyncInSequential;
                    return SegmentEnd::Error(
                        Box::new(move |t| Verdict::RuntimeError(e, t)),
                    );
                }
                Instr::Return(op) => {
                    let ret = {
                        let env = SeqEnv { module, config: &mut config };
                        op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                    };
                    let finished = config.stack.pop().expect("nonempty");
                    if config.stack.is_empty() {
                        return SegmentEnd::Done;
                    }
                    if let Some(dest) = finished.dest {
                        let mut env = SeqEnv { module, config: &mut config };
                        match eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret)) {
                            Ok(()) => {}
                            Err(e) => {
                                return SegmentEnd::Error(
                                    Box::new(move |t| Verdict::RuntimeError(e, t)),
                                )
                            }
                        }
                    }
                }
                Instr::Jump(t) => {
                    config.stack.last_mut().expect("nonempty").pc = *t;
                }
                Instr::NondetJump(_) => {
                    // Hand the parked config back; the caller steers its
                    // pc through the targets, cloning only new states.
                    return SegmentEnd::Branch(config);
                }
                Instr::AtomicBegin | Instr::AtomicEnd => {
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
            }
        }
    }
}

enum SegmentEnd {
    /// Segment finished (termination or pruned assume).
    Done,
    /// Hit a nondeterministic branch: the configuration parked on its
    /// `NondetJump`. The segment's steps are in the caller's scratch
    /// buffer.
    Branch(Config),
    /// An error; the closure builds the verdict from the full trace
    /// (whose tail is the caller's scratch buffer).
    Error(Box<dyn FnOnce(ErrorTrace) -> Verdict>),
    /// Out of budget, with the axis that tripped.
    Budget(BoundReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitChecker;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn agrees_with_dfs_on_verdicts() {
        let corpus = [
            ("int g; void main() { g = 1; assert g == 1; }", false),
            ("int g; void main() { g = 1; assert g == 2; }", true),
            ("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }", true),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }", false),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }", true),
        ];
        for (src, fails) in corpus {
            let m = module(src);
            let bfs = BfsChecker::new(&m).check();
            let dfs = ExplicitChecker::new(&m).check();
            assert_eq!(bfs.is_fail(), fails, "bfs on {src}: {bfs:?}");
            assert_eq!(dfs.is_fail(), fails, "dfs on {src}: {dfs:?}");
        }
    }

    #[test]
    fn legacy_and_cow_stores_explore_identically() {
        let corpus = [
            "int g; void main() { g = 1; assert g == 1; }",
            "int g; void main() { g = 1; assert g == 2; }",
            "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }",
            "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }",
            "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }",
            "int g;
             int pick() { choice { return 1; [] return 2; } }
             void main() { int x; x = pick(); g = x; assert g == 1; }",
        ];
        for src in corpus {
            let m = module(src);
            let (lv, ls) =
                BfsChecker::new(&m).with_store(StoreKind::Legacy).check_with_stats();
            let (cv, cs) = BfsChecker::new(&m).with_store(StoreKind::Cow).check_with_stats();
            // Everything the search *observes* is identical; only the
            // store's byte accounting may differ between the two
            // representations.
            assert_eq!(lv, cv, "verdicts diverge on {src}");
            assert_eq!(ls.steps, cs.steps, "steps diverge on {src}");
            assert_eq!(ls.states, cs.states, "states diverge on {src}");
            assert_eq!(ls.paths, cs.paths, "paths diverge on {src}");
            assert_eq!(ls.frontier_peak, cs.frontier_peak, "frontier diverges on {src}");
            assert_eq!(ls.states_stored, cs.states_stored, "stored diverge on {src}");
        }
    }

    #[test]
    fn finds_a_trace_no_longer_than_dfs() {
        // The bug is reachable immediately via the second branch, but a
        // DFS taking first branches first wanders through the loop.
        let src = "
            int g;
            void main() {
                choice {
                    iter { g = g + 1; assume g <= 30; }
                    g = 99;
                []
                    g = 99;
                }
                assert g != 99;
            }
        ";
        let m = module(src);
        let Verdict::Fail(bfs_trace) = BfsChecker::new(&m).check() else { panic!("bfs") };
        let Verdict::Fail(dfs_trace) = ExplicitChecker::new(&m).check() else { panic!("dfs") };
        assert!(
            bfs_trace.steps.len() <= dfs_trace.steps.len(),
            "bfs {} vs dfs {}",
            bfs_trace.steps.len(),
            dfs_trace.steps.len()
        );
        // And the BFS trace is genuinely short: straight to the second
        // branch.
        assert!(bfs_trace.steps.len() < 12, "{}", bfs_trace.steps.len());
    }

    #[test]
    fn reconstructed_trace_ends_at_the_assert() {
        let src = "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }";
        let m = module(src);
        let Verdict::Fail(trace) = BfsChecker::new(&m).check() else { panic!() };
        let last = trace.steps.last().unwrap();
        assert!(matches!(m.body(last.func).instrs[last.pc], Instr::Assert(_)));
        // The trace starts at pc 0 of main.
        assert_eq!(trace.steps.first().unwrap().pc, 0);
    }

    #[test]
    fn budget_trips() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let v = BfsChecker::new(&m).with_budget(Budget::steps_states(5_000, 200)).check();
        assert!(v.is_inconclusive(), "{v:?}");
    }

    #[test]
    fn cancellation_is_observed() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = BfsChecker::new(&m).with_cancel(cancel).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = BfsChecker::new(&m).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Deadline);
    }

    #[test]
    fn works_through_calls() {
        let src = "
            int g;
            int pick() { choice { return 1; [] return 2; } }
            void main() { int x; x = pick(); g = x; assert g == 1; }
        ";
        let m = module(src);
        assert!(BfsChecker::new(&m).check().is_fail());
    }
}
