//! Breadth-first variant of the explicit-state checker: finds a
//! counterexample of **minimal branch depth**.
//!
//! The DFS engine ([`crate::explicit`]) returns the first error it
//! stumbles into, which can be needlessly long; model checkers like
//! SLAM put effort into short traces because humans read them. This
//! engine explores configurations in breadth-first order over
//! *decision points* (nondeterministic branches and loop entries) and
//! reconstructs the trace through a parent map.
//!
//! The BFS frontier stores whole configurations, so it trades memory
//! for trace quality; prefer the DFS engine for pure verdicts.

use std::collections::{HashMap, HashSet, VecDeque};

use kiss_exec::{eval, Env as _, Instr, Module, Value};
use kiss_obs::Obs;

use crate::budget::{BoundReason, Budget, Meter};
use crate::cancel::CancelToken;
use crate::config::{Config, Frame, SeqEnv};
use crate::explicit::resolve_target;
use crate::stats::EngineStats;
use crate::verdict::{ErrorTrace, TraceStep, Verdict};

/// Parent map over decision points: child fingerprint ->
/// (parent fingerprint, steps taken between them).
type ParentMap = HashMap<(u64, u64), ((u64, u64), Vec<TraceStep>)>;

/// The breadth-first checker.
#[derive(Debug, Clone)]
pub struct BfsChecker<'a> {
    module: &'a Module,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
}

impl<'a> BfsChecker<'a> {
    /// Creates a checker over a lowered module.
    pub fn new(module: &'a Module) -> Self {
        BfsChecker {
            module,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cancellation token polled from the search loop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the search emits throttled progress and
    /// budget-violation events through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the check; a `Fail` verdict carries a minimal-depth trace.
    pub fn check(&self) -> Verdict {
        self.check_with_stats().0
    }

    /// Runs the check, also returning statistics.
    pub fn check_with_stats(&self) -> (Verdict, EngineStats) {
        // The frontier stores whole configurations; charge a coarse
        // per-state estimate well above a bare fingerprint.
        let mut meter = Meter::new(self.budget, self.cancel.clone())
            .with_state_size(256)
            .with_observer(self.obs.clone(), "bfs");
        let mut visited: HashSet<(u64, u64)> = HashSet::new();
        let mut parents: ParentMap = HashMap::new();
        let mut frontier_peak = 1usize;
        let root = Config::initial(self.module);
        let root_fp = root.fingerprint();
        visited.insert(root_fp);
        let mut frontier: VecDeque<(Config, (u64, u64))> = VecDeque::new();
        frontier.push_back((root, root_fp));

        let stats = |meter: &Meter, visited: &HashSet<(u64, u64)>, frontier_peak: usize| {
            EngineStats {
                steps: meter.usage.steps,
                states: visited.len(),
                frontier_peak,
                ..EngineStats::default()
            }
        };

        while let Some((config, fp)) = frontier.pop_front() {
            // Run the segment to the next decision point (or to an
            // end), collecting its steps.
            match self.run_segment(config, &mut meter) {
                SegmentEnd::Budget(reason) => {
                    return (
                        Verdict::ResourceBound {
                            steps: meter.usage.steps,
                            states: meter.usage.states,
                            reason,
                        },
                        stats(&meter, &visited, frontier_peak),
                    )
                }
                SegmentEnd::Error(verdict_steps, mk) => {
                    let trace = self.reconstruct(&parents, fp, verdict_steps);
                    return (mk(trace), stats(&meter, &visited, frontier_peak));
                }
                SegmentEnd::Done => {}
                SegmentEnd::Branch(steps, alternatives) => {
                    for alt in alternatives {
                        let afp = alt.fingerprint();
                        if visited.insert(afp) {
                            meter.note_states(visited.len());
                            parents.insert(afp, (fp, steps.clone()));
                            frontier.push_back((alt, afp));
                        }
                    }
                    frontier_peak = frontier_peak.max(frontier.len());
                }
            }
            if let Some(reason) = meter.over_budget() {
                return (
                    Verdict::ResourceBound {
                        steps: meter.usage.steps,
                        states: meter.usage.states,
                        reason,
                    },
                    stats(&meter, &visited, frontier_peak),
                );
            }
        }
        (Verdict::Pass, stats(&meter, &visited, frontier_peak))
    }

    fn reconstruct(
        &self,
        parents: &ParentMap,
        mut fp: (u64, u64),
        tail: Vec<TraceStep>,
    ) -> ErrorTrace {
        let mut segments = vec![tail];
        while let Some((parent, steps)) = parents.get(&fp) {
            segments.push(steps.clone());
            fp = *parent;
        }
        segments.reverse();
        ErrorTrace { steps: segments.concat(), globals: Vec::new() }
    }

    /// Runs deterministically until the next NondetJump (returning the
    /// successor configs), an error, an end, or the budget.
    ///
    /// Like the DFS engine, instructions are borrowed from the module
    /// body instead of cloned per executed step — `Call` argument lists
    /// and `NondetJump` target vectors are heap-backed.
    fn run_segment(&self, mut config: Config, meter: &mut Meter) -> SegmentEnd {
        let module = self.module;
        let mut steps: Vec<TraceStep> = Vec::with_capacity(64);
        loop {
            let Some(frame) = config.stack.last() else {
                return SegmentEnd::Done;
            };
            if let Err(reason) = meter.tick() {
                return SegmentEnd::Budget(reason);
            }
            let func = frame.func;
            let pc = frame.pc;
            let body = module.body(func);
            let meta = body.meta[pc];
            steps.push(TraceStep { func, pc, origin: meta.origin, span: meta.span });
            match &body.instrs[pc] {
                Instr::Assign(place, rv) => {
                    let mut env = SeqEnv { module, config: &mut config };
                    if let Err(e) = eval::exec_assign(&mut env, place, rv) {
                        return SegmentEnd::Error(
                            steps,
                            Box::new(move |t| Verdict::RuntimeError(e, t)),
                        );
                    }
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
                Instr::Assert(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Error(steps, Box::new(Verdict::Fail)),
                        Err(e) => {
                            return SegmentEnd::Error(
                                steps,
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Assume(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Done,
                        Err(e) => {
                            return SegmentEnd::Error(
                                steps,
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Call { dest, target, args } => {
                    // One env borrow resolves the callee and evaluates
                    // the arguments together.
                    let resolved = {
                        let env = SeqEnv { module, config: &mut config };
                        resolve_target(&env, *target).map(|callee| {
                            let arg_vals: Vec<Value> =
                                args.iter().map(|a| eval::eval_operand(&env, a)).collect();
                            (callee, arg_vals)
                        })
                    };
                    match resolved {
                        Ok((callee, arg_vals)) => {
                            config.stack.last_mut().expect("nonempty").pc += 1;
                            config.stack.push(Frame::enter(module, callee, &arg_vals, *dest));
                        }
                        Err(e) => {
                            return SegmentEnd::Error(
                                steps,
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Async { .. } => {
                    let e = kiss_exec::ExecError::AsyncInSequential;
                    return SegmentEnd::Error(
                        steps,
                        Box::new(move |t| Verdict::RuntimeError(e, t)),
                    );
                }
                Instr::Return(op) => {
                    let ret = {
                        let env = SeqEnv { module, config: &mut config };
                        op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                    };
                    let finished = config.stack.pop().expect("nonempty");
                    if config.stack.is_empty() {
                        return SegmentEnd::Done;
                    }
                    if let Some(dest) = finished.dest {
                        let mut env = SeqEnv { module, config: &mut config };
                        match eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret)) {
                            Ok(()) => {}
                            Err(e) => {
                                return SegmentEnd::Error(
                                    steps,
                                    Box::new(move |t| Verdict::RuntimeError(e, t)),
                                )
                            }
                        }
                    }
                }
                Instr::Jump(t) => {
                    config.stack.last_mut().expect("nonempty").pc = *t;
                }
                Instr::NondetJump(targets) => {
                    let mut alts = Vec::with_capacity(targets.len());
                    for &t in targets {
                        let mut alt = config.clone();
                        alt.stack.last_mut().expect("nonempty").pc = t;
                        alts.push(alt);
                    }
                    return SegmentEnd::Branch(steps, alts);
                }
                Instr::AtomicBegin | Instr::AtomicEnd => {
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
            }
        }
    }
}

enum SegmentEnd {
    /// Segment finished (termination or pruned assume).
    Done,
    /// Hit a nondeterministic branch: successor configurations.
    Branch(Vec<TraceStep>, Vec<Config>),
    /// An error; the closure builds the verdict from the full trace.
    Error(Vec<TraceStep>, Box<dyn FnOnce(ErrorTrace) -> Verdict>),
    /// Out of budget, with the axis that tripped.
    Budget(BoundReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitChecker;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn agrees_with_dfs_on_verdicts() {
        let corpus = [
            ("int g; void main() { g = 1; assert g == 1; }", false),
            ("int g; void main() { g = 1; assert g == 2; }", true),
            ("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }", true),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }", false),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }", true),
        ];
        for (src, fails) in corpus {
            let m = module(src);
            let bfs = BfsChecker::new(&m).check();
            let dfs = ExplicitChecker::new(&m).check();
            assert_eq!(bfs.is_fail(), fails, "bfs on {src}: {bfs:?}");
            assert_eq!(dfs.is_fail(), fails, "dfs on {src}: {dfs:?}");
        }
    }

    #[test]
    fn finds_a_trace_no_longer_than_dfs() {
        // The bug is reachable immediately via the second branch, but a
        // DFS taking first branches first wanders through the loop.
        let src = "
            int g;
            void main() {
                choice {
                    iter { g = g + 1; assume g <= 30; }
                    g = 99;
                []
                    g = 99;
                }
                assert g != 99;
            }
        ";
        let m = module(src);
        let Verdict::Fail(bfs_trace) = BfsChecker::new(&m).check() else { panic!("bfs") };
        let Verdict::Fail(dfs_trace) = ExplicitChecker::new(&m).check() else { panic!("dfs") };
        assert!(
            bfs_trace.steps.len() <= dfs_trace.steps.len(),
            "bfs {} vs dfs {}",
            bfs_trace.steps.len(),
            dfs_trace.steps.len()
        );
        // And the BFS trace is genuinely short: straight to the second
        // branch.
        assert!(bfs_trace.steps.len() < 12, "{}", bfs_trace.steps.len());
    }

    #[test]
    fn reconstructed_trace_ends_at_the_assert() {
        let src = "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }";
        let m = module(src);
        let Verdict::Fail(trace) = BfsChecker::new(&m).check() else { panic!() };
        let last = trace.steps.last().unwrap();
        assert!(matches!(m.body(last.func).instrs[last.pc], Instr::Assert(_)));
        // The trace starts at pc 0 of main.
        assert_eq!(trace.steps.first().unwrap().pc, 0);
    }

    #[test]
    fn budget_trips() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let v = BfsChecker::new(&m).with_budget(Budget::steps_states(5_000, 200)).check();
        assert!(v.is_inconclusive(), "{v:?}");
    }

    #[test]
    fn cancellation_is_observed() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = BfsChecker::new(&m).with_cancel(cancel).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = BfsChecker::new(&m).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Deadline);
    }

    #[test]
    fn works_through_calls() {
        let src = "
            int g;
            int pick() { choice { return 1; [] return 2; } }
            void main() { int x; x = pick(); g = x; assert g == 1; }
        ";
        let m = module(src);
        assert!(BfsChecker::new(&m).check().is_fail());
    }
}
