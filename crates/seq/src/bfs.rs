//! Breadth-first variant of the explicit-state checker: finds a
//! counterexample of **minimal branch depth**.
//!
//! The DFS engine ([`crate::explicit`]) returns the first error it
//! stumbles into, which can be needlessly long; model checkers like
//! SLAM put effort into short traces because humans read them. This
//! engine explores configurations in breadth-first order over
//! *decision points* (nondeterministic branches and loop entries) and
//! reconstructs the trace through a parent map.
//!
//! The BFS frontier stores whole configurations, so it trades memory
//! for trace quality; prefer the DFS engine for pure verdicts.
//!
//! State bookkeeping lives behind [`StoreKind`]: the default `cow`
//! store keys an open-addressing [`VisitedTable`] on **split
//! fingerprints** (the shared part of a branch's alternatives is hashed
//! once, each alternative finishes in O(1)), indexes the parent map by
//! dense [`StateId`]s, and interns the per-edge trace segments — the
//! `schedule()` preambles repeat heavily, so the historical owned
//! `Vec<TraceStep>` clone per edge stored the same steps once per edge
//! instead of once per distinct segment. `legacy` keeps the historical
//! `HashSet` + owned-clone storage as the equivalence oracle.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use kiss_exec::{eval, Env as _, Instr, Module, Value};
use kiss_obs::Obs;

use crate::budget::{BoundReason, Budget, Meter, BYTES_PER_FINGERPRINT};
use crate::cancel::CancelToken;
use crate::config::{Config, Frame, SeqEnv};
use crate::explicit::resolve_target;
use crate::stats::EngineStats;
use crate::store::{
    SegId, SegmentInterner, ShardedVisitedTable, StateCapExceeded, StateId, StoreKind,
    VisitedTable,
};
use crate::verdict::{ErrorTrace, TraceStep, Verdict};

/// Parent map over decision points: child fingerprint ->
/// (parent fingerprint, steps taken between them).
type ParentMap = HashMap<(u64, u64), ((u64, u64), Vec<TraceStep>)>;

/// A frontier node's handle into the active store.
#[derive(Clone, Copy)]
enum NodeKey {
    /// Legacy store: the node's full fingerprint.
    Fp(u64, u64),
    /// Cow store: the node's dense id in the visited table.
    Id(StateId),
}

/// The per-run state storage, selected by [`StoreKind`].
enum BfsStore {
    Legacy {
        visited: HashSet<(u64, u64)>,
        parents: ParentMap,
    },
    Cow {
        visited: VisitedTable,
        /// Indexed by [`StateId`]; the root is its own parent.
        parents: Vec<(StateId, SegId)>,
        interner: SegmentInterner,
    },
}

impl BfsStore {
    fn len(&self) -> usize {
        match self {
            BfsStore::Legacy { visited, .. } => visited.len(),
            BfsStore::Cow { visited, .. } => visited.len(),
        }
    }

    /// Bytes held by visited + parent storage: exact for the cow
    /// store, the historical estimate plus owned-segment sizes for
    /// legacy.
    fn bytes(&self) -> usize {
        match self {
            BfsStore::Legacy { visited, parents } => {
                visited.len() * BYTES_PER_FINGERPRINT
                    + parents
                        .values()
                        .map(|(_, steps)| {
                            BYTES_PER_FINGERPRINT
                                + steps.capacity() * std::mem::size_of::<TraceStep>()
                        })
                        .sum::<usize>()
            }
            BfsStore::Cow { visited, parents, interner } => {
                visited.bytes()
                    + parents.capacity() * std::mem::size_of::<(StateId, SegId)>()
                    + interner.bytes()
            }
        }
    }
}

/// The breadth-first checker.
#[derive(Debug, Clone)]
pub struct BfsChecker<'a> {
    module: &'a Module,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
    store: StoreKind,
    jobs: usize,
    state_cap: Option<u32>,
}

impl<'a> BfsChecker<'a> {
    /// Creates a checker over a lowered module.
    pub fn new(module: &'a Module) -> Self {
        BfsChecker {
            module,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
            store: StoreKind::default(),
            jobs: 1,
            state_cap: None,
        }
    }

    /// Selects the state-storage implementation.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Explores with `jobs` worker threads (clamped to at least one).
    /// Only the `cow` store supports parallel exploration; the legacy
    /// store ignores this and stays serial. Results are byte-identical
    /// to a serial run regardless of the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Caps each visited-table shard (serial: the whole table) at
    /// `cap` entries, surfacing [`BoundReason::StateCap`] when the
    /// search outgrows it. Primarily a testing and hard-memory-ceiling
    /// knob; the default cap is the full id space.
    pub fn with_state_cap(mut self, cap: u32) -> Self {
        self.state_cap = Some(cap);
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cancellation token polled from the search loop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the search emits throttled progress and
    /// budget-violation events through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the check; a `Fail` verdict carries a minimal-depth trace.
    pub fn check(&self) -> Verdict {
        self.check_with_stats().0
    }

    /// Runs the check, also returning statistics.
    pub fn check_with_stats(&self) -> (Verdict, EngineStats) {
        if self.jobs > 1 && self.store == StoreKind::Cow {
            return self.check_parallel_with_stats();
        }
        // The frontier stores whole configurations; charge a coarse
        // per-state estimate well above a bare fingerprint.
        let mut meter = Meter::new(self.budget, self.cancel.clone())
            .with_state_size(256)
            .with_observer(self.obs.clone(), "bfs");
        let mut frontier_peak = 1usize;
        let root = Config::initial(self.module);
        let mut frontier: VecDeque<(Config, NodeKey)> = VecDeque::new();
        let mut store = match self.store {
            StoreKind::Legacy => {
                let root_fp = root.fingerprint();
                let mut visited = HashSet::new();
                visited.insert(root_fp);
                frontier.push_back((root, NodeKey::Fp(root_fp.0, root_fp.1)));
                BfsStore::Legacy { visited, parents: HashMap::new() }
            }
            StoreKind::Cow => {
                let root_fp = root.fingerprint_base().with_pc(root.top_pc());
                let mut visited = match self.state_cap {
                    Some(cap) => VisitedTable::new().with_capacity_limit(cap),
                    None => VisitedTable::new(),
                };
                let (root_id, _) =
                    visited.insert(root_fp).expect("an empty table is never at capacity");
                frontier.push_back((root, NodeKey::Id(root_id)));
                BfsStore::Cow {
                    visited,
                    // The root is its own parent — the reconstruction
                    // walk's termination sentinel.
                    parents: vec![(root_id, SegId::EMPTY)],
                    interner: SegmentInterner::new(),
                }
            }
        };

        let stats = |meter: &Meter, store: &BfsStore, frontier_peak: usize| EngineStats {
            steps: meter.usage.steps,
            states: store.len(),
            frontier_peak,
            states_stored: store.len(),
            store_bytes: store.bytes(),
            speculative_steps: meter.usage.steps,
            ..EngineStats::default()
        };

        // Segment steps accumulate into one scratch buffer reused
        // across segments instead of a fresh allocation per segment.
        let mut steps: Vec<TraceStep> = Vec::with_capacity(64);
        while let Some((config, key)) = frontier.pop_front() {
            // Run the segment to the next decision point (or to an
            // end), collecting its steps.
            match self.run_segment(config, &mut meter, &mut steps) {
                SegmentEnd::Budget(reason) => {
                    return (
                        Verdict::ResourceBound {
                            steps: meter.usage.steps,
                            states: meter.usage.states,
                            reason,
                        },
                        stats(&meter, &store, frontier_peak),
                    )
                }
                SegmentEnd::Error(mk) => {
                    let trace = Self::reconstruct(&store, key, std::mem::take(&mut steps));
                    return (mk(trace), stats(&meter, &store, frontier_peak));
                }
                SegmentEnd::Done => {}
                SegmentEnd::Branch(mut config) => {
                    // The config is parked on its NondetJump; the
                    // alternatives differ only in the top pc, so each
                    // is fingerprinted *before* it exists — by steering
                    // the parked config's pc — and only genuinely new
                    // states pay for a clone.
                    let frame = config.stack.last().expect("nonempty at a branch");
                    let body = self.module.body(frame.func);
                    let Instr::NondetJump(targets) = &body.instrs[frame.pc] else {
                        unreachable!("Branch ends only at a NondetJump")
                    };
                    let mut capped = false;
                    match &mut store {
                        BfsStore::Legacy { visited, parents } => {
                            let NodeKey::Fp(f0, f1) = key else {
                                unreachable!("legacy store hands out Fp keys")
                            };
                            for &t in targets {
                                config.stack.last_mut().expect("nonempty").pc = t;
                                let afp = config.fingerprint();
                                if visited.insert(afp) {
                                    meter.note_states(visited.len());
                                    parents.insert(afp, ((f0, f1), steps.clone()));
                                    frontier
                                        .push_back((config.clone(), NodeKey::Fp(afp.0, afp.1)));
                                }
                            }
                        }
                        BfsStore::Cow { visited, parents, interner } => {
                            let NodeKey::Id(parent_id) = key else {
                                unreachable!("cow store hands out Id keys")
                            };
                            // Hash the shared part once; intern the edge
                            // segment only when some alternative is new.
                            // The last new alternative inherits the
                            // parked config instead of cloning it.
                            let base = config.fingerprint_base();
                            let mut seg = None;
                            let mut pending = None;
                            for &t in targets {
                                let afp = base.with_pc(t);
                                let (id, new) = match visited.insert(afp) {
                                    Ok(entry) => entry,
                                    Err(StateCapExceeded) => {
                                        capped = true;
                                        break;
                                    }
                                };
                                if new {
                                    meter.note_states(visited.len());
                                    debug_assert_eq!(parents.len(), id.0 as usize);
                                    let seg =
                                        *seg.get_or_insert_with(|| interner.intern(&steps));
                                    parents.push((parent_id, seg));
                                    if let Some((pt, pid)) = pending.replace((t, id)) {
                                        let mut c = config.clone();
                                        c.stack.last_mut().expect("nonempty").pc = pt;
                                        frontier.push_back((c, NodeKey::Id(pid)));
                                    }
                                }
                            }
                            if let Some((pt, pid)) = pending {
                                config.stack.last_mut().expect("nonempty").pc = pt;
                                frontier.push_back((config, NodeKey::Id(pid)));
                            }
                        }
                    }
                    if capped {
                        // The id space is structural: retrying with a
                        // larger budget cannot widen it, so the typed
                        // reason marks this non-retryable.
                        meter.emit_violation(BoundReason::StateCap);
                        return (
                            Verdict::ResourceBound {
                                steps: meter.usage.steps,
                                states: meter.usage.states,
                                reason: BoundReason::StateCap,
                            },
                            stats(&meter, &store, frontier_peak),
                        );
                    }
                    frontier_peak = frontier_peak.max(frontier.len());
                }
            }
            if let Some(reason) = meter.over_budget() {
                return (
                    Verdict::ResourceBound {
                        steps: meter.usage.steps,
                        states: meter.usage.states,
                        reason,
                    },
                    stats(&meter, &store, frontier_peak),
                );
            }
        }
        (Verdict::Pass, stats(&meter, &store, frontier_peak))
    }

    /// The parallel search: layer-synchronous speculation over the
    /// sharded store, followed by a sequential commit walk.
    ///
    /// Each frontier *layer* (all nodes at one branch depth, in serial
    /// discovery order) is speculated by worker threads: every node
    /// runs its segment under a [`Meter::speculative`] derived meter
    /// and inserts its children into the [`ShardedVisitedTable`] under
    /// provisional `(rank, target)` claims. The commit walk then
    /// replays the layer in rank order on the real meter — bulk step
    /// accounting via [`Meter::advance`], claim arbitration via
    /// min-merge (the claim the serial loop would have made first
    /// wins) — and builds the next layer in serial FIFO order.
    /// Verdicts, traces, step counts, and stored-state counts are
    /// byte-identical with `jobs = 1`; only wall-clock-dependent axes
    /// (deadline, cancellation) may observe a different step count.
    fn check_parallel_with_stats(&self) -> (Verdict, EngineStats) {
        let mut meter = Meter::new(self.budget, self.cancel.clone())
            .with_state_size(256)
            .with_observer(self.obs.clone(), "bfs");
        let store: ShardedVisitedTable<Config> = match self.state_cap {
            Some(cap) => ShardedVisitedTable::with_shard_capacity(cap),
            None => ShardedVisitedTable::new(),
        };
        let mut interner = SegmentInterner::new();
        // Every instruction any worker executed, including speculation
        // past the serial stopping point; merged at worker exit.
        let speculated = AtomicU64::new(0);

        let root = Config::initial(self.module);
        let root_fp = root.fingerprint_base().with_pc(root.top_pc());
        let (root_id, _) = store
            .insert_claimed(root_fp, 0, 0)
            .expect("an empty table is never at capacity");
        store.set_parent(root_id, root_id, SegId::EMPTY);
        store.seal();

        // Distinct states committed so far, root included — the serial
        // run's `visited.len()`. On an early exit the sharded table
        // over-contains (speculative inserts past the stopping point),
        // so stats report this count, never `store.len()`.
        let mut committed: usize = 1;
        let mut frontier_peak = 1usize;
        let mut layer: Vec<(StateId, Config)> = vec![(root_id, root)];

        loop {
            if layer.is_empty() {
                let stats =
                    pstats(&meter, committed, frontier_peak, &store, &interner, &speculated);
                return (Verdict::Pass, stats);
            }
            let layer_len = layer.len();
            // Steps the serial run could still execute without
            // tripping. Any segment it completes fits inside this, so
            // a speculative step trip is a definite serial trip.
            let spec_budget = self.budget.max_steps.saturating_sub(meter.usage.steps);
            let results = self.speculate_layer(layer, spec_budget, &store, &meter, &speculated);

            let mut next: Vec<(StateId, Config)> = Vec::new();
            // Children committed from this layer so far; the serial
            // frontier after expanding rank `r` holds the remaining
            // layer nodes plus exactly these.
            let mut layer_children = 0usize;
            for (rank, slot) in results.into_iter().enumerate() {
                let spec = slot.expect("every rank up to a terminal outcome is speculated");
                match spec {
                    Spec::Budget { reason: BoundReason::Steps, .. } => {
                        // The segment cannot finish within what the
                        // whole layer had left, so the serial run
                        // trips inside it, pinned one past the cap.
                        meter.usage.steps = self.budget.max_steps.saturating_add(1);
                        meter.emit_violation(BoundReason::Steps);
                        let stats = pstats(
                            &meter, committed, frontier_peak, &store, &interner, &speculated,
                        );
                        return (resource_bound(BoundReason::Steps, &meter), stats);
                    }
                    Spec::Budget { reason, executed } => {
                        // Wall-clock (deadline/cancel) or structural
                        // (state-cap) interruptions: the exact step
                        // count is not serially replayable, report
                        // where this worker stopped.
                        meter.usage.steps = meter.usage.steps.saturating_add(executed);
                        meter.emit_violation(reason);
                        let stats = pstats(
                            &meter, committed, frontier_peak, &store, &interner, &speculated,
                        );
                        return (resource_bound(reason, &meter), stats);
                    }
                    Spec::Done { seg_steps } => {
                        if let Err(reason) = meter.advance(seg_steps) {
                            let stats = pstats(
                                &meter, committed, frontier_peak, &store, &interner, &speculated,
                            );
                            return (resource_bound(reason, &meter), stats);
                        }
                    }
                    Spec::Error { seg_steps, parent, seg, mk } => {
                        // A step trip strictly before the erroring
                        // instruction wins, exactly like the serial
                        // interleaving of ticks and execution.
                        if let Err(reason) = meter.advance(seg_steps) {
                            let stats = pstats(
                                &meter, committed, frontier_peak, &store, &interner, &speculated,
                            );
                            return (resource_bound(reason, &meter), stats);
                        }
                        let trace = reconstruct_sharded(&store, &interner, parent, seg);
                        let stats = pstats(
                            &meter, committed, frontier_peak, &store, &interner, &speculated,
                        );
                        return (mk(trace), stats);
                    }
                    Spec::Branch { seg_steps, parent, seg, children } => {
                        if let Err(reason) = meter.advance(seg_steps) {
                            let stats = pstats(
                                &meter, committed, frontier_peak, &store, &interner, &speculated,
                            );
                            return (resource_bound(reason, &meter), stats);
                        }
                        let mut seg_id = None;
                        for (tidx, id) in children.into_iter().enumerate() {
                            if store.claim_of(id) != Some((rank as u32, tidx as u32)) {
                                // A prior-layer revisit, or a lower
                                // rank's claim won this state.
                                continue;
                            }
                            committed += 1;
                            meter.note_states(committed);
                            let sid = *seg_id.get_or_insert_with(|| interner.intern(&seg));
                            store.set_parent(id, parent, sid);
                            let config =
                                store.take_parked(id).expect("a winning entry was parked");
                            next.push((id, config));
                            layer_children += 1;
                        }
                        frontier_peak =
                            frontier_peak.max(layer_len - 1 - rank + layer_children);
                        if let Some(reason) = meter.over_budget() {
                            let stats = pstats(
                                &meter, committed, frontier_peak, &store, &interner, &speculated,
                            );
                            return (resource_bound(reason, &meter), stats);
                        }
                    }
                }
            }
            store.seal();
            layer = next;
        }
    }

    /// Speculates one layer with up to `self.jobs` workers: per-worker
    /// deques dealt round-robin by rank (so the low ranks the commit
    /// walk needs first finish early), idle workers stealing from the
    /// back of their neighbours. Returns per-rank outcomes; ranks past
    /// a discovered terminal outcome may be skipped (`None`).
    fn speculate_layer(
        &self,
        layer: Vec<(StateId, Config)>,
        spec_budget: u64,
        store: &ShardedVisitedTable<Config>,
        meter: &Meter,
        speculated: &AtomicU64,
    ) -> Vec<Option<Spec>> {
        let layer_len = layer.len();
        let workers = self.jobs.min(layer_len).max(1);
        let mut deques: Vec<VecDeque<(usize, StateId, Config)>> =
            (0..workers).map(|_| VecDeque::with_capacity(layer_len / workers + 1)).collect();
        for (rank, (id, config)) in layer.into_iter().enumerate() {
            deques[rank % workers].push_back((rank, id, config));
        }
        let deques: Vec<Mutex<VecDeque<(usize, StateId, Config)>>> =
            deques.into_iter().map(Mutex::new).collect();
        let scan = Mutex::new(LayerScan {
            results: (0..layer_len).map(|_| None).collect(),
            prefix: 0,
            prefix_steps: 0,
            stopped: false,
        });
        // Highest rank still worth speculating: once a rank's outcome
        // ends the layer (error, budget, or the committed-step prefix
        // exhausting the budget), higher ranks cannot influence the
        // verdict and workers skip them. Only an optimization — the
        // commit walk never reads past the terminal rank.
        let stop_above = AtomicUsize::new(usize::MAX);

        let run = |widx: usize| {
            let mut executed = 0u64;
            loop {
                // Two statements on purpose: the own-deque guard must
                // drop before stealing, or two workers stealing from
                // each other hold their own lock while waiting for the
                // other's — a deadlock.
                let own = deques[widx].lock().expect("deque lock").pop_front();
                let job = match own {
                    Some(job) => Some(job),
                    None => (1..workers).find_map(|off| {
                        deques[(widx + off) % workers]
                            .lock()
                            .expect("deque lock")
                            .pop_back()
                    }),
                };
                let Some((rank, id, config)) = job else { break };
                if rank > stop_above.load(Ordering::Relaxed) {
                    continue;
                }
                let (spec, steps) = self.speculate(rank, id, config, spec_budget, store, meter);
                executed += steps;
                let mut scan = scan.lock().expect("scan lock");
                scan.results[rank] = Some(spec);
                while !scan.stopped {
                    let p = scan.prefix;
                    let Some(Some(spec)) = scan.results.get(p) else { break };
                    let (add, terminal) = match spec {
                        Spec::Budget { .. } => (0, true),
                        Spec::Error { seg_steps, .. } => (*seg_steps, true),
                        Spec::Done { seg_steps } | Spec::Branch { seg_steps, .. } => {
                            (*seg_steps, false)
                        }
                    };
                    scan.prefix_steps += add;
                    scan.prefix += 1;
                    if terminal || scan.prefix_steps > spec_budget {
                        scan.stopped = true;
                        stop_above.fetch_min(p, Ordering::Relaxed);
                    }
                }
            }
            speculated.fetch_add(executed, Ordering::Relaxed);
        };

        if workers == 1 {
            run(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..workers {
                    let run = &run;
                    s.spawn(move || run(w));
                }
            });
        }
        scan.into_inner().expect("scan lock").results
    }

    /// Runs one layer node speculatively: executes its segment on a
    /// derived meter and, at a branch, inserts the successor states
    /// under `(rank, target)` claims, parking a configuration for each
    /// state this call created. Returns the outcome and the number of
    /// instructions actually executed.
    fn speculate(
        &self,
        rank: usize,
        id: StateId,
        config: Config,
        spec_budget: u64,
        store: &ShardedVisitedTable<Config>,
        meter: &Meter,
    ) -> (Spec, u64) {
        let mut spec_meter = meter.speculative(spec_budget);
        let mut seg: Vec<TraceStep> = Vec::with_capacity(64);
        match self.run_segment(config, &mut spec_meter, &mut seg) {
            SegmentEnd::Budget(reason) => {
                let executed = spec_meter.usage.steps;
                (Spec::Budget { reason, executed }, executed)
            }
            SegmentEnd::Done => {
                let executed = spec_meter.usage.steps;
                (Spec::Done { seg_steps: executed }, executed)
            }
            SegmentEnd::Error(mk) => {
                let executed = spec_meter.usage.steps;
                (Spec::Error { seg_steps: executed, parent: id, seg, mk }, executed)
            }
            SegmentEnd::Branch(mut config) => {
                let executed = spec_meter.usage.steps;
                let frame = config.stack.last().expect("nonempty at a branch");
                let body = self.module.body(frame.func);
                let Instr::NondetJump(targets) = &body.instrs[frame.pc] else {
                    unreachable!("Branch ends only at a NondetJump")
                };
                // Same pending-shift as the serial cow path: each new
                // state the *creator* parks a clone for, except the
                // last, which inherits the parked config.
                let base = config.fingerprint_base();
                let mut children = Vec::with_capacity(targets.len());
                let mut pending: Option<(usize, StateId)> = None;
                for (tidx, &t) in targets.iter().enumerate() {
                    let afp = base.with_pc(t);
                    match store.insert_claimed(afp, rank as u32, tidx as u32) {
                        Err(StateCapExceeded) => {
                            return (
                                Spec::Budget { reason: BoundReason::StateCap, executed },
                                executed,
                            )
                        }
                        Ok((cid, created)) => {
                            children.push(cid);
                            if created {
                                if let Some((pt, pid)) = pending.replace((t, cid)) {
                                    let mut c = config.clone();
                                    c.stack.last_mut().expect("nonempty").pc = pt;
                                    store.park(pid, c);
                                }
                            }
                        }
                    }
                }
                if let Some((pt, pid)) = pending {
                    config.stack.last_mut().expect("nonempty").pc = pt;
                    store.park(pid, config);
                }
                (Spec::Branch { seg_steps: executed, parent: id, seg, children }, executed)
            }
        }
    }

    /// Rebuilds the full trace for the node at `key` by walking parent
    /// edges back to the root — lazily, only when a violation is
    /// actually reported.
    fn reconstruct(store: &BfsStore, key: NodeKey, tail: Vec<TraceStep>) -> ErrorTrace {
        let steps = match (store, key) {
            (BfsStore::Legacy { parents, .. }, NodeKey::Fp(f0, f1)) => {
                let mut fp = (f0, f1);
                let mut segments = vec![tail];
                while let Some((parent, steps)) = parents.get(&fp) {
                    segments.push(steps.clone());
                    fp = *parent;
                }
                segments.reverse();
                segments.concat()
            }
            (BfsStore::Cow { parents, interner, .. }, NodeKey::Id(mut id)) => {
                let mut segments: Vec<SegId> = Vec::new();
                loop {
                    let (parent, seg) = parents[id.0 as usize];
                    if parent == id {
                        break;
                    }
                    segments.push(seg);
                    id = parent;
                }
                let total: usize =
                    segments.iter().map(|&s| interner.get(s).len()).sum();
                let mut steps = Vec::with_capacity(total + tail.len());
                for &seg in segments.iter().rev() {
                    steps.extend_from_slice(interner.get(seg));
                }
                steps.extend(tail);
                steps
            }
            _ => unreachable!("store and key kinds always match"),
        };
        ErrorTrace { steps, globals: Vec::new() }
    }

    /// Runs deterministically until the next NondetJump (returning the
    /// successor configs), an error, an end, or the budget. The
    /// executed steps land in `steps` (cleared first), which the caller
    /// reuses across segments.
    ///
    /// Like the DFS engine, instructions are borrowed from the module
    /// body instead of cloned per executed step — `Call` argument lists
    /// and `NondetJump` target vectors are heap-backed.
    fn run_segment(
        &self,
        mut config: Config,
        meter: &mut Meter,
        steps: &mut Vec<TraceStep>,
    ) -> SegmentEnd {
        let module = self.module;
        steps.clear();
        loop {
            let Some(frame) = config.stack.last() else {
                return SegmentEnd::Done;
            };
            if let Err(reason) = meter.tick() {
                return SegmentEnd::Budget(reason);
            }
            let func = frame.func;
            let pc = frame.pc;
            let body = module.body(func);
            let meta = body.meta[pc];
            steps.push(TraceStep { func, pc, origin: meta.origin, span: meta.span });
            match &body.instrs[pc] {
                Instr::Assign(place, rv) => {
                    let mut env = SeqEnv { module, config: &mut config };
                    if let Err(e) = eval::exec_assign(&mut env, place, rv) {
                        return SegmentEnd::Error(
                            Box::new(move |t| Verdict::RuntimeError(e, t)),
                        );
                    }
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
                Instr::Assert(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Error(Box::new(Verdict::Fail)),
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Assume(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return SegmentEnd::Done,
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Call { dest, target, args } => {
                    // One env borrow resolves the callee and evaluates
                    // the arguments together.
                    let resolved = {
                        let env = SeqEnv { module, config: &mut config };
                        resolve_target(&env, *target).map(|callee| {
                            let arg_vals: Vec<Value> =
                                args.iter().map(|a| eval::eval_operand(&env, a)).collect();
                            (callee, arg_vals)
                        })
                    };
                    match resolved {
                        Ok((callee, arg_vals)) => {
                            config.stack.last_mut().expect("nonempty").pc += 1;
                            config.stack.push(Frame::enter(module, callee, &arg_vals, *dest));
                        }
                        Err(e) => {
                            return SegmentEnd::Error(
                                Box::new(move |t| Verdict::RuntimeError(e, t)),
                            )
                        }
                    }
                }
                Instr::Async { .. } => {
                    let e = kiss_exec::ExecError::AsyncInSequential;
                    return SegmentEnd::Error(
                        Box::new(move |t| Verdict::RuntimeError(e, t)),
                    );
                }
                Instr::Return(op) => {
                    let ret = {
                        let env = SeqEnv { module, config: &mut config };
                        op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                    };
                    let finished = config.stack.pop().expect("nonempty");
                    if config.stack.is_empty() {
                        return SegmentEnd::Done;
                    }
                    if let Some(dest) = finished.dest {
                        let mut env = SeqEnv { module, config: &mut config };
                        match eval::place_addr(&env, &dest).and_then(|a| env.write_addr(a, ret)) {
                            Ok(()) => {}
                            Err(e) => {
                                return SegmentEnd::Error(
                                    Box::new(move |t| Verdict::RuntimeError(e, t)),
                                )
                            }
                        }
                    }
                }
                Instr::Jump(t) => {
                    config.stack.last_mut().expect("nonempty").pc = *t;
                }
                Instr::NondetJump(_) => {
                    // Hand the parked config back; the caller steers its
                    // pc through the targets, cloning only new states.
                    return SegmentEnd::Branch(config);
                }
                Instr::AtomicBegin | Instr::AtomicEnd => {
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
            }
        }
    }
}

enum SegmentEnd {
    /// Segment finished (termination or pruned assume).
    Done,
    /// Hit a nondeterministic branch: the configuration parked on its
    /// `NondetJump`. The segment's steps are in the caller's scratch
    /// buffer.
    Branch(Config),
    /// An error; the closure builds the verdict from the full trace
    /// (whose tail is the caller's scratch buffer). `Send` because a
    /// parallel exploration ships it from the worker that found the
    /// error to the committing thread.
    Error(Box<dyn FnOnce(ErrorTrace) -> Verdict + Send>),
    /// Out of budget, with the axis that tripped.
    Budget(BoundReason),
}

/// One layer node's speculative outcome, consumed by the commit walk.
enum Spec {
    /// Segment finished; only its step count is observable.
    Done { seg_steps: u64 },
    /// Segment errored after `seg_steps` instructions; `seg` is the
    /// trace tail from the layer node `parent`.
    Error {
        seg_steps: u64,
        parent: StateId,
        seg: Vec<TraceStep>,
        mk: Box<dyn FnOnce(ErrorTrace) -> Verdict + Send>,
    },
    /// Segment reached a branch; `children` are the claimed successor
    /// ids in target order (winners are decided at commit).
    Branch { seg_steps: u64, parent: StateId, seg: Vec<TraceStep>, children: Vec<StateId> },
    /// The speculative meter tripped after `executed` instructions, or
    /// a visited shard hit its capacity.
    Budget { reason: BoundReason, executed: u64 },
}

/// Shared progress over one layer's speculation: per-rank outcomes
/// plus a scan of the contiguous finished prefix, used to stop
/// speculating past a rank that ends the layer.
struct LayerScan {
    results: Vec<Option<Spec>>,
    /// Ranks `0..prefix` all have outcomes.
    prefix: usize,
    /// Sum of the finished prefix's committed step counts.
    prefix_steps: u64,
    /// A terminal outcome sits inside the prefix; stop scanning.
    stopped: bool,
}

/// Statistics for the parallel search. `committed` (not the sharded
/// table's length) is the serial-equivalent state count: on an early
/// exit the table also holds uncommitted speculative inserts.
fn pstats(
    meter: &Meter,
    committed: usize,
    frontier_peak: usize,
    store: &ShardedVisitedTable<Config>,
    interner: &SegmentInterner,
    speculated: &AtomicU64,
) -> EngineStats {
    EngineStats {
        steps: meter.usage.steps,
        states: committed,
        frontier_peak,
        states_stored: committed,
        store_bytes: store.bytes() + interner.bytes(),
        speculative_steps: speculated.load(Ordering::Relaxed).max(meter.usage.steps),
        ..EngineStats::default()
    }
}

fn resource_bound(reason: BoundReason, meter: &Meter) -> Verdict {
    Verdict::ResourceBound {
        steps: meter.usage.steps,
        states: meter.usage.states,
        reason,
    }
}

/// The sharded-store analogue of [`BfsChecker::reconstruct`]: walks
/// committed parent edges from `id` back to the self-parented root.
fn reconstruct_sharded(
    store: &ShardedVisitedTable<Config>,
    interner: &SegmentInterner,
    mut id: StateId,
    tail: Vec<TraceStep>,
) -> ErrorTrace {
    let mut segments: Vec<SegId> = Vec::new();
    loop {
        let (parent, seg) = store.parent(id);
        if parent == id {
            break;
        }
        segments.push(seg);
        id = parent;
    }
    let total: usize = segments.iter().map(|&s| interner.get(s).len()).sum();
    let mut steps = Vec::with_capacity(total + tail.len());
    for &seg in segments.iter().rev() {
        steps.extend_from_slice(interner.get(seg));
    }
    steps.extend(tail);
    ErrorTrace { steps, globals: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitChecker;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn agrees_with_dfs_on_verdicts() {
        let corpus = [
            ("int g; void main() { g = 1; assert g == 1; }", false),
            ("int g; void main() { g = 1; assert g == 2; }", true),
            ("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }", true),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }", false),
            ("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }", true),
        ];
        for (src, fails) in corpus {
            let m = module(src);
            let bfs = BfsChecker::new(&m).check();
            let dfs = ExplicitChecker::new(&m).check();
            assert_eq!(bfs.is_fail(), fails, "bfs on {src}: {bfs:?}");
            assert_eq!(dfs.is_fail(), fails, "dfs on {src}: {dfs:?}");
        }
    }

    #[test]
    fn legacy_and_cow_stores_explore_identically() {
        let corpus = [
            "int g; void main() { g = 1; assert g == 1; }",
            "int g; void main() { g = 1; assert g == 2; }",
            "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }",
            "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }",
            "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }",
            "int g;
             int pick() { choice { return 1; [] return 2; } }
             void main() { int x; x = pick(); g = x; assert g == 1; }",
        ];
        for src in corpus {
            let m = module(src);
            let (lv, ls) =
                BfsChecker::new(&m).with_store(StoreKind::Legacy).check_with_stats();
            let (cv, cs) = BfsChecker::new(&m).with_store(StoreKind::Cow).check_with_stats();
            // Everything the search *observes* is identical; only the
            // store's byte accounting may differ between the two
            // representations.
            assert_eq!(lv, cv, "verdicts diverge on {src}");
            assert_eq!(ls.steps, cs.steps, "steps diverge on {src}");
            assert_eq!(ls.states, cs.states, "states diverge on {src}");
            assert_eq!(ls.paths, cs.paths, "paths diverge on {src}");
            assert_eq!(ls.frontier_peak, cs.frontier_peak, "frontier diverges on {src}");
            assert_eq!(ls.states_stored, cs.states_stored, "stored diverge on {src}");
        }
    }

    #[test]
    fn finds_a_trace_no_longer_than_dfs() {
        // The bug is reachable immediately via the second branch, but a
        // DFS taking first branches first wanders through the loop.
        let src = "
            int g;
            void main() {
                choice {
                    iter { g = g + 1; assume g <= 30; }
                    g = 99;
                []
                    g = 99;
                }
                assert g != 99;
            }
        ";
        let m = module(src);
        let Verdict::Fail(bfs_trace) = BfsChecker::new(&m).check() else { panic!("bfs") };
        let Verdict::Fail(dfs_trace) = ExplicitChecker::new(&m).check() else { panic!("dfs") };
        assert!(
            bfs_trace.steps.len() <= dfs_trace.steps.len(),
            "bfs {} vs dfs {}",
            bfs_trace.steps.len(),
            dfs_trace.steps.len()
        );
        // And the BFS trace is genuinely short: straight to the second
        // branch.
        assert!(bfs_trace.steps.len() < 12, "{}", bfs_trace.steps.len());
    }

    #[test]
    fn reconstructed_trace_ends_at_the_assert() {
        let src = "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }";
        let m = module(src);
        let Verdict::Fail(trace) = BfsChecker::new(&m).check() else { panic!() };
        let last = trace.steps.last().unwrap();
        assert!(matches!(m.body(last.func).instrs[last.pc], Instr::Assert(_)));
        // The trace starts at pc 0 of main.
        assert_eq!(trace.steps.first().unwrap().pc, 0);
    }

    #[test]
    fn budget_trips() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let v = BfsChecker::new(&m).with_budget(Budget::steps_states(5_000, 200)).check();
        assert!(v.is_inconclusive(), "{v:?}");
    }

    #[test]
    fn cancellation_is_observed() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = BfsChecker::new(&m).with_cancel(cancel).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = BfsChecker::new(&m).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Deadline);
    }

    /// Programs exercising every outcome the parallel engine has to
    /// replicate: pass, fail (minimal-depth trace), runtime error
    /// paths, wide layers, and call-crossing branches.
    const PARALLEL_CORPUS: &[&str] = &[
        "int g; void main() { g = 1; assert g == 1; }",
        "int g; void main() { g = 1; assert g == 2; }",
        "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }",
        "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g <= 3; }",
        "int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }",
        "int g;
         int pick() { choice { return 1; [] return 2; } }
         void main() { int x; x = pick(); g = x; assert g == 1; }",
        "int g;
         void main() {
             choice {
                 iter { g = g + 1; assume g <= 30; }
                 g = 99;
             []
                 g = 99;
             }
             assert g != 99;
         }",
        "int a; int b; int c;
         void main() {
             choice { a = 1; [] a = 2; [] a = 3; [] a = 4; }
             choice { b = 1; [] b = 2; [] b = 3; [] b = 4; }
             iter { c = c + a; assume c <= 40; }
             assert c + b <= 60;
         }",
        "int a; int b; int c;
         void main() {
             choice { a = 1; [] a = 2; [] a = 3; [] a = 4; }
             choice { b = 1; [] b = 2; [] b = 3; [] b = 4; }
             iter { c = c + a; assume c <= 40; }
             assert c + b <= 20;
         }",
    ];

    #[test]
    fn parallel_exploration_is_byte_identical_to_serial() {
        for &src in PARALLEL_CORPUS {
            let m = module(src);
            let (sv, ss) = BfsChecker::new(&m).check_with_stats();
            for jobs in [2, 4, 8] {
                let (pv, ps) = BfsChecker::new(&m).with_jobs(jobs).check_with_stats();
                // Full verdict equality covers traces byte-for-byte.
                assert_eq!(sv, pv, "verdicts diverge on {src} at jobs={jobs}");
                assert_eq!(ss.steps, ps.steps, "steps diverge on {src} at jobs={jobs}");
                assert_eq!(ss.states, ps.states, "states diverge on {src} at jobs={jobs}");
                assert_eq!(ss.paths, ps.paths, "paths diverge on {src} at jobs={jobs}");
                assert_eq!(
                    ss.frontier_peak, ps.frontier_peak,
                    "frontier diverges on {src} at jobs={jobs}"
                );
                assert_eq!(
                    ss.states_stored, ps.states_stored,
                    "stored diverge on {src} at jobs={jobs}"
                );
                assert!(
                    ps.speculative_steps >= ps.steps,
                    "speculation under-counts on {src} at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn parallel_budget_trips_match_serial_exactly() {
        // Steps, states, and memory axes are deterministic: the trip
        // point, reported step count, and state count must all match.
        let budgets = [
            Budget::steps_states(50, 1_000_000),
            Budget::steps_states(5_000, 200),
            Budget::steps_states(1_000_000, 8),
        ];
        let m = module("int g; void main() { iter { g = g + 1; } }");
        for budget in budgets {
            let (sv, ss) =
                BfsChecker::new(&m).with_budget(budget).check_with_stats();
            assert!(sv.is_inconclusive(), "{sv:?}");
            for jobs in [2, 4] {
                let (pv, ps) = BfsChecker::new(&m)
                    .with_budget(budget)
                    .with_jobs(jobs)
                    .check_with_stats();
                assert_eq!(sv, pv, "trip verdicts diverge at jobs={jobs}");
                assert_eq!(ss.steps, ps.steps, "trip steps diverge at jobs={jobs}");
                assert_eq!(ss.states, ps.states, "trip states diverge at jobs={jobs}");
            }
        }
    }

    #[test]
    fn parallel_state_cap_is_typed_and_not_retryable() {
        // 31 distinct states across 16 shards: with one slot per
        // shard, some shard must overflow (and in serial, the single
        // table overflows immediately).
        let m = module("int g; void main() { iter { g = g + 1; assume g <= 30; } }");
        for checker in [
            BfsChecker::new(&m).with_state_cap(1),
            BfsChecker::new(&m).with_state_cap(1).with_jobs(4),
        ] {
            let v = checker.check();
            let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
            assert_eq!(reason, BoundReason::StateCap);
            assert!(!reason.retryable(), "a structural cap must not trigger retries");
        }
    }

    #[test]
    fn parallel_observes_cancellation_and_deadline() {
        let m = module("int g; void main() { iter { g = g + 1; } }");
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = BfsChecker::new(&m).with_jobs(4).with_cancel(cancel).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Cancelled);

        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = BfsChecker::new(&m).with_jobs(4).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Deadline);
    }

    #[test]
    fn serial_state_cap_reports_typed_inconclusive() {
        let m = module("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }");
        let v = BfsChecker::new(&m).with_state_cap(1).check();
        let Verdict::ResourceBound { reason, states, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::StateCap);
        assert!(states <= 1, "nothing past the cap is stored");
    }

    #[test]
    fn legacy_store_ignores_jobs_and_stays_serial() {
        let m = module("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }");
        let (sv, ss) =
            BfsChecker::new(&m).with_store(StoreKind::Legacy).check_with_stats();
        let (pv, ps) = BfsChecker::new(&m)
            .with_store(StoreKind::Legacy)
            .with_jobs(4)
            .check_with_stats();
        assert_eq!(sv, pv);
        assert_eq!(ss, ps);
    }

    #[test]
    fn works_through_calls() {
        let src = "
            int g;
            int pick() { choice { return 1; [] return 2; } }
            void main() { int x; x = pick(); g = x; assert g == 1; }
        ";
        let m = module(src);
        assert!(BfsChecker::new(&m).check().is_fail());
    }
}
