//! Resource budgets.
//!
//! The paper runs each per-field race check under "a resource bound of
//! 20 minutes of CPU time and 800MB of memory"; checks that exceed it
//! are reported as inconclusive (neither "race" nor "no race" in
//! Table 1). We bound steps and distinct visited states instead, which
//! is deterministic and machine-independent.

/// Execution budget for one check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of executed instructions across the whole search.
    pub max_steps: u64,
    /// Maximum number of distinct visited states.
    pub max_states: usize,
}

impl Budget {
    /// A budget large enough for all the bundled examples.
    pub fn generous() -> Self {
        Budget { max_steps: 50_000_000, max_states: 4_000_000 }
    }

    /// A small budget for unit tests.
    pub fn small() -> Self {
        Budget { max_steps: 100_000, max_states: 20_000 }
    }

    /// An unlimited budget (use only on known-finite programs).
    pub fn unlimited() -> Self {
        Budget { max_steps: u64::MAX, max_states: usize::MAX }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::generous()
    }
}

/// Running totals checked against a [`Budget`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Instructions executed.
    pub steps: u64,
    /// Distinct states recorded.
    pub states: usize,
}

impl Usage {
    /// Whether the usage exceeds the budget.
    pub fn exceeded(&self, budget: &Budget) -> bool {
        self.steps > budget.max_steps || self.states > budget.max_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceeded_checks_both_axes() {
        let b = Budget { max_steps: 10, max_states: 5 };
        assert!(!Usage { steps: 10, states: 5 }.exceeded(&b));
        assert!(Usage { steps: 11, states: 0 }.exceeded(&b));
        assert!(Usage { steps: 0, states: 6 }.exceeded(&b));
    }

    #[test]
    fn presets_are_ordered() {
        assert!(Budget::small().max_steps < Budget::generous().max_steps);
        assert!(Budget::generous().max_steps < Budget::unlimited().max_steps);
    }
}
