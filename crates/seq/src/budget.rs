//! Resource budgets.
//!
//! The paper runs each per-field race check under "a resource bound of
//! 20 minutes of CPU time and 800MB of memory"; checks that exceed it
//! are reported as inconclusive (neither "race" nor "no race" in
//! Table 1). We primarily bound steps and distinct visited states,
//! which is deterministic and machine-independent, and optionally add
//! the paper's own knobs: a wall-clock deadline and an approximate
//! memory cap. [`BoundReason`] records *which* axis tripped, so a
//! supervisor can decide whether retrying with a larger budget is worth
//! it (a deadline may just be a slow machine; a state explosion is
//! not).

use std::time::{Duration, Instant};

use kiss_obs::{Event, Obs};

use crate::cancel::CancelToken;

/// Execution budget for one check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of executed instructions across the whole search.
    pub max_steps: u64,
    /// Maximum number of distinct visited states.
    pub max_states: usize,
    /// Optional wall-clock deadline for one check.
    pub max_wall: Option<Duration>,
    /// Optional cap on the *approximate* memory attributable to the
    /// search (visited-state storage estimate), in bytes.
    pub max_mem_bytes: Option<usize>,
}

impl Budget {
    /// A budget bounding only steps and states (no deadline, no memory
    /// cap) — the historical constructor.
    pub fn steps_states(max_steps: u64, max_states: usize) -> Self {
        Budget { max_steps, max_states, max_wall: None, max_mem_bytes: None }
    }

    /// A budget large enough for all the bundled examples.
    pub fn generous() -> Self {
        Budget::steps_states(50_000_000, 4_000_000)
    }

    /// A small budget for unit tests.
    pub fn small() -> Self {
        Budget::steps_states(100_000, 20_000)
    }

    /// An unlimited budget (use only on known-finite programs).
    pub fn unlimited() -> Self {
        Budget::steps_states(u64::MAX, usize::MAX)
    }

    /// Adds a wall-clock deadline.
    pub fn with_deadline(mut self, wall: Duration) -> Self {
        self.max_wall = Some(wall);
        self
    }

    /// Adds an approximate memory cap.
    pub fn with_mem_limit(mut self, bytes: usize) -> Self {
        self.max_mem_bytes = Some(bytes);
        self
    }

    /// This budget with every axis multiplied by `factor` (saturating).
    /// Used by retry-with-escalation: an inconclusive check is re-run
    /// under `scaled(2)`, then `scaled(4)`, before giving up.
    pub fn scaled(&self, factor: u32) -> Self {
        Budget {
            max_steps: self.max_steps.saturating_mul(factor as u64),
            max_states: self.max_states.saturating_mul(factor as usize),
            max_wall: self.max_wall.map(|w| w.saturating_mul(factor)),
            max_mem_bytes: self.max_mem_bytes.map(|m| m.saturating_mul(factor as usize)),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::generous()
    }
}

/// Which budget axis ended a search early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundReason {
    /// The step (instruction) budget ran out.
    Steps,
    /// The distinct-state budget ran out.
    States,
    /// The wall-clock deadline passed.
    Deadline,
    /// The approximate memory cap was hit.
    Memory,
    /// Cancellation was requested (signal, supervisor shutdown).
    Cancelled,
    /// The state store ran out of dense-id space (a [`crate::store`]
    /// table, or one shard of the sharded table, exhausted its id
    /// range). Distinct from [`BoundReason::States`]: that axis is a
    /// configured budget, this one is a structural capacity limit.
    StateCap,
}

impl BoundReason {
    /// A stable lowercase name (used in journals and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundReason::Steps => "steps",
            BoundReason::States => "states",
            BoundReason::Deadline => "deadline",
            BoundReason::Memory => "memory",
            BoundReason::Cancelled => "cancelled",
            BoundReason::StateCap => "state-cap",
        }
    }

    /// Parses [`BoundReason::as_str`] output (journal round-trip).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "steps" => BoundReason::Steps,
            "states" => BoundReason::States,
            "deadline" => BoundReason::Deadline,
            "memory" => BoundReason::Memory,
            "cancelled" => BoundReason::Cancelled,
            "state-cap" => BoundReason::StateCap,
            _ => return None,
        })
    }

    /// Whether retrying the same check with a *larger* budget could
    /// plausibly resolve it. Cancellation is not retryable: the
    /// supervisor is shutting down. Neither is a state-cap trip: the
    /// id space is structural, a bigger budget does not widen it.
    pub fn retryable(&self) -> bool {
        !matches!(self, BoundReason::Cancelled | BoundReason::StateCap)
    }
}

impl std::fmt::Display for BoundReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Running totals checked against a [`Budget`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Instructions executed.
    pub steps: u64,
    /// Distinct states recorded.
    pub states: usize,
    /// Approximate bytes attributable to visited-state storage.
    pub mem_bytes: usize,
}

impl Usage {
    /// Whether the usage exceeds the budget's deterministic axes
    /// (steps, states, memory estimate). Wall-clock and cancellation
    /// are checked by [`Meter`], which owns the clock.
    pub fn exceeded(&self, budget: &Budget) -> bool {
        self.violation(budget).is_some()
    }

    /// The first deterministic axis this usage violates, if any.
    pub fn violation(&self, budget: &Budget) -> Option<BoundReason> {
        if self.steps > budget.max_steps {
            Some(BoundReason::Steps)
        } else if self.states > budget.max_states {
            Some(BoundReason::States)
        } else if budget.max_mem_bytes.is_some_and(|cap| self.mem_bytes > cap) {
            Some(BoundReason::Memory)
        } else {
            None
        }
    }
}

/// Approximate bytes one fingerprinted state costs: a `(u64, u64)`
/// fingerprint plus `HashSet` bucket overhead.
pub const BYTES_PER_FINGERPRINT: usize = 48;

/// Per-check budget enforcement shared by all engines.
///
/// Centralizes the bookkeeping the engines used to do by hand: step
/// counting, state accounting, and — new — wall-clock deadline and
/// cancellation polling. `Instant::now()` and the atomic load are kept
/// off the hot path by polling only every 1024 steps (and on the very
/// first step, so tiny budgets still observe cancellation).
#[derive(Debug, Clone)]
pub struct Meter {
    budget: Budget,
    cancel: CancelToken,
    started: Instant,
    bytes_per_state: usize,
    obs: Obs,
    engine: &'static str,
    /// Running totals, readable by the engine for statistics.
    pub usage: Usage,
}

/// Progress events are emitted every `TICK_EVENT_MASK + 1` steps — a
/// power of two so the test is a mask, nested inside the 1024-step
/// slow-path window.
const TICK_EVENT_MASK: u64 = (1 << 18) - 1;

impl Meter {
    /// Starts metering against `budget`; the deadline clock starts now.
    pub fn new(budget: Budget, cancel: CancelToken) -> Self {
        Meter {
            budget,
            cancel,
            started: Instant::now(),
            bytes_per_state: BYTES_PER_FINGERPRINT,
            obs: Obs::off(),
            engine: "",
            usage: Usage::default(),
        }
    }

    /// Overrides the per-state size estimate (engines that store whole
    /// configurations rather than fingerprints pass a larger number).
    pub fn with_state_size(mut self, bytes_per_state: usize) -> Self {
        self.bytes_per_state = bytes_per_state;
        self
    }

    /// Attaches an observer: the meter emits throttled
    /// `EngineTick` progress events and a `BudgetViolated` event when
    /// any axis trips. `engine` names the engine in those events.
    pub fn with_observer(mut self, obs: Obs, engine: &'static str) -> Self {
        self.obs = obs;
        self.engine = engine;
        self
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Counts one executed instruction and checks every bound.
    /// Deterministic axes are checked on every call; the clock and the
    /// cancellation flag every 1024 steps (and on the first).
    #[inline]
    pub fn tick(&mut self) -> Result<(), BoundReason> {
        self.usage.steps += 1;
        if let Some(reason) = self.usage.violation(&self.budget) {
            self.emit_violation(reason);
            return Err(reason);
        }
        if self.usage.steps & 1023 == 1 {
            self.slow_tick()
        } else {
            Ok(())
        }
    }

    /// The infrequent part of [`Meter::tick`]: clock + cancellation,
    /// plus (even less frequently) a progress event.
    fn slow_tick(&mut self) -> Result<(), BoundReason> {
        if self.usage.steps & TICK_EVENT_MASK == 1 {
            self.obs.emit(|check| Event::EngineTick {
                check: check.to_string(),
                engine: self.engine,
                steps: self.usage.steps,
                states: self.usage.states as u64,
            });
        }
        self.poll()
    }

    /// A derived meter for one *speculative* work unit of a parallel
    /// search: it shares this meter's clock origin and cancellation
    /// token (so deadlines and ^C interrupt workers just like the
    /// serial loop), bounds only `max_steps` instructions, and emits no
    /// events — the committing thread owns the observable accounting.
    pub fn speculative(&self, max_steps: u64) -> Meter {
        Meter {
            budget: Budget {
                max_steps,
                max_states: usize::MAX,
                max_wall: self.budget.max_wall,
                max_mem_bytes: None,
            },
            cancel: self.cancel.clone(),
            started: self.started,
            bytes_per_state: self.bytes_per_state,
            obs: Obs::off(),
            engine: self.engine,
            usage: Usage::default(),
        }
    }

    /// Counts `n` already-executed instructions at once — the commit
    /// path of a parallel search replays a speculatively-run segment's
    /// step total in bulk. Reports exactly what `n` serial
    /// [`Meter::tick`]s would have: on a step-budget trip the usage is
    /// pinned to `max_steps + 1` (a serial run stops at the first
    /// over-budget instruction, never overshooting), and the clock /
    /// cancellation flag are polled when the advance crosses a
    /// 1024-step window.
    pub fn advance(&mut self, n: u64) -> Result<(), BoundReason> {
        let before = self.usage.steps;
        if n > self.budget.max_steps.saturating_sub(before) {
            self.usage.steps = self.budget.max_steps.saturating_add(1);
            self.emit_violation(BoundReason::Steps);
            return Err(BoundReason::Steps);
        }
        self.usage.steps = before + n;
        if before & !TICK_EVENT_MASK != self.usage.steps & !TICK_EVENT_MASK {
            self.obs.emit(|check| Event::EngineTick {
                check: check.to_string(),
                engine: self.engine,
                steps: self.usage.steps,
                states: self.usage.states as u64,
            });
        }
        if before >> 10 != self.usage.steps >> 10 {
            self.poll()
        } else {
            Ok(())
        }
    }

    /// Records the current distinct-state count (and the derived memory
    /// estimate). Violations surface on the next [`Meter::tick`].
    pub fn note_states(&mut self, states: usize) {
        self.usage.states = states;
        self.usage.mem_bytes = states.saturating_mul(self.bytes_per_state);
    }

    /// Checks the clock and the cancellation flag immediately,
    /// regardless of the step count.
    pub fn poll(&self) -> Result<(), BoundReason> {
        if self.cancel.is_cancelled() {
            self.emit_violation(BoundReason::Cancelled);
            return Err(BoundReason::Cancelled);
        }
        if self.budget.max_wall.is_some_and(|w| self.started.elapsed() > w) {
            self.emit_violation(BoundReason::Deadline);
            return Err(BoundReason::Deadline);
        }
        Ok(())
    }

    /// Re-checks the deterministic axes without counting a step — for
    /// engines that grow state in bulk between ticks (the BFS frontier
    /// expansion).
    pub fn over_budget(&self) -> Option<BoundReason> {
        let violation = self.usage.violation(&self.budget);
        if let Some(reason) = violation {
            self.emit_violation(reason);
        }
        violation
    }

    pub(crate) fn emit_violation(&self, reason: BoundReason) {
        self.obs.emit(|check| Event::BudgetViolated {
            check: check.to_string(),
            engine: self.engine,
            reason: reason.as_str().to_string(),
            steps: self.usage.steps,
            states: self.usage.states as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceeded_checks_both_axes() {
        let b = Budget::steps_states(10, 5);
        assert!(!Usage { steps: 10, states: 5, mem_bytes: 0 }.exceeded(&b));
        assert_eq!(
            Usage { steps: 11, states: 0, mem_bytes: 0 }.violation(&b),
            Some(BoundReason::Steps)
        );
        assert_eq!(
            Usage { steps: 0, states: 6, mem_bytes: 0 }.violation(&b),
            Some(BoundReason::States)
        );
    }

    #[test]
    fn memory_axis_only_applies_when_capped() {
        let uncapped = Budget::steps_states(10, 5);
        let capped = uncapped.with_mem_limit(100);
        let usage = Usage { steps: 0, states: 0, mem_bytes: 101 };
        assert!(!usage.exceeded(&uncapped));
        assert_eq!(usage.violation(&capped), Some(BoundReason::Memory));
    }

    #[test]
    fn presets_are_ordered() {
        assert!(Budget::small().max_steps < Budget::generous().max_steps);
        assert!(Budget::generous().max_steps < Budget::unlimited().max_steps);
    }

    #[test]
    fn scaled_multiplies_every_axis() {
        let b = Budget::steps_states(100, 10)
            .with_deadline(Duration::from_secs(3))
            .with_mem_limit(1000);
        let s = b.scaled(4);
        assert_eq!(s.max_steps, 400);
        assert_eq!(s.max_states, 40);
        assert_eq!(s.max_wall, Some(Duration::from_secs(12)));
        assert_eq!(s.max_mem_bytes, Some(4000));
        // Saturates instead of overflowing.
        assert_eq!(Budget::unlimited().scaled(8).max_steps, u64::MAX);
    }

    #[test]
    fn bound_reason_round_trips_through_strings() {
        for r in [
            BoundReason::Steps,
            BoundReason::States,
            BoundReason::Deadline,
            BoundReason::Memory,
            BoundReason::Cancelled,
            BoundReason::StateCap,
        ] {
            assert_eq!(BoundReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(BoundReason::parse("bogus"), None);
    }

    #[test]
    fn only_cancellation_and_state_cap_are_not_retryable() {
        assert!(BoundReason::Steps.retryable());
        assert!(BoundReason::Deadline.retryable());
        assert!(!BoundReason::Cancelled.retryable());
        assert!(!BoundReason::StateCap.retryable());
    }

    #[test]
    fn advance_matches_serial_ticks() {
        // Within budget: advance(n) lands where n ticks would.
        let mut bulk = Meter::new(Budget::steps_states(100, 100), CancelToken::new());
        assert!(bulk.advance(40).is_ok());
        assert!(bulk.advance(60).is_ok());
        assert_eq!(bulk.usage.steps, 100);
        // One step over: a serial run reports max_steps + 1 (the trip
        // happens at the first over-budget instruction), regardless of
        // how far the speculative segment overshot.
        assert_eq!(bulk.advance(1), Err(BoundReason::Steps));
        assert_eq!(bulk.usage.steps, 101);
        let mut overshoot = Meter::new(Budget::steps_states(100, 100), CancelToken::new());
        assert_eq!(overshoot.advance(5000), Err(BoundReason::Steps));
        assert_eq!(overshoot.usage.steps, 101);
    }

    #[test]
    fn advance_polls_cancellation_across_windows() {
        let cancel = CancelToken::new();
        let mut m = Meter::new(Budget::generous(), cancel.clone());
        cancel.cancel();
        // A small advance inside one 1024-step window skips the poll…
        assert!(m.advance(10).is_ok());
        // …but crossing a window boundary observes the cancellation.
        assert_eq!(m.advance(2048), Err(BoundReason::Cancelled));
    }

    #[test]
    fn speculative_meter_bounds_steps_and_shares_cancel() {
        let cancel = CancelToken::new();
        let base = Meter::new(
            Budget::steps_states(1_000, 10).with_mem_limit(1),
            cancel.clone(),
        );
        let mut spec = base.speculative(2);
        // Only the step axis applies: states/memory are the committing
        // thread's business.
        spec.note_states(1_000_000);
        assert!(spec.tick().is_ok());
        assert!(spec.tick().is_ok());
        assert_eq!(spec.tick(), Err(BoundReason::Steps));
        // The shared token interrupts the worker.
        let mut spec = base.speculative(u64::MAX);
        cancel.cancel();
        assert_eq!(spec.tick(), Err(BoundReason::Cancelled));
    }

    #[test]
    fn meter_trips_on_steps() {
        let mut m = Meter::new(Budget::steps_states(3, 100), CancelToken::new());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert_eq!(m.tick(), Err(BoundReason::Steps));
    }

    #[test]
    fn meter_observes_cancellation_on_first_step() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut m = Meter::new(Budget::generous(), cancel);
        assert_eq!(m.tick(), Err(BoundReason::Cancelled));
    }

    #[test]
    fn meter_observes_late_cancellation_within_poll_window() {
        let cancel = CancelToken::new();
        let mut m = Meter::new(Budget::generous(), cancel.clone());
        for _ in 0..100 {
            assert!(m.tick().is_ok());
        }
        cancel.cancel();
        // Cancellation must surface within one poll window (1024 steps).
        let tripped = (0..2048).find_map(|_| m.tick().err());
        assert_eq!(tripped, Some(BoundReason::Cancelled));
    }

    #[test]
    fn meter_trips_on_expired_deadline() {
        let budget = Budget::generous().with_deadline(Duration::ZERO);
        let mut m = Meter::new(budget, CancelToken::new());
        assert_eq!(m.tick(), Err(BoundReason::Deadline));
    }

    #[test]
    fn meter_accounts_memory_through_note_states() {
        let budget = Budget::generous().with_mem_limit(10 * BYTES_PER_FINGERPRINT);
        let mut m = Meter::new(budget, CancelToken::new());
        m.note_states(10);
        assert!(m.tick().is_ok());
        m.note_states(11);
        assert_eq!(m.tick(), Err(BoundReason::Memory));
    }

    // --- violation-ordering guarantees ------------------------------
    //
    // Downstream consumers (retry ladder, reports) rely on `tick`
    // checking the deterministic axes in a fixed order before ever
    // touching the clock, so identical runs always report the same
    // `BoundReason`.

    #[test]
    fn tick_reports_memory_before_deadline() {
        // Memory and deadline are both violated; the deterministic axis
        // must win, or the verdict would depend on machine speed.
        let budget = Budget::generous()
            .with_mem_limit(BYTES_PER_FINGERPRINT)
            .with_deadline(Duration::ZERO);
        let mut m = Meter::new(budget, CancelToken::new());
        m.note_states(2);
        assert_eq!(m.tick(), Err(BoundReason::Memory));
    }

    #[test]
    fn tick_reports_steps_before_states_and_memory() {
        let budget = Budget::steps_states(0, 0).with_mem_limit(0);
        let mut m = Meter::new(budget, CancelToken::new());
        m.note_states(5);
        assert_eq!(m.tick(), Err(BoundReason::Steps));

        // With steps still in budget, states wins over memory.
        let budget = Budget::steps_states(1000, 0).with_mem_limit(0);
        let mut m = Meter::new(budget, CancelToken::new());
        m.note_states(5);
        assert_eq!(m.tick(), Err(BoundReason::States));
    }

    #[test]
    fn poll_reports_cancellation_before_deadline() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let m = Meter::new(Budget::generous().with_deadline(Duration::ZERO), cancel);
        assert_eq!(m.poll(), Err(BoundReason::Cancelled));
    }

    #[test]
    fn meter_emits_tick_and_violation_events() {
        let agg = kiss_obs::Aggregator::new();
        let obs = Obs::new(agg.clone()).with_label("t");
        let mut m =
            Meter::new(Budget::steps_states(5, 100), CancelToken::new()).with_observer(obs, "x");
        while m.tick().is_ok() {}
        let counts = agg.event_counts();
        assert_eq!(counts.get("engine_tick"), Some(&1), "{counts:?}");
        assert_eq!(counts.get("budget_violated"), Some(&1), "{counts:?}");
    }
}
