//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a
//! supervisor (CLI signal handler, corpus runner, test harness) and the
//! search engines. Engines poll it from their inner loops (via
//! [`crate::budget::Meter`]) and wind down with a
//! [`crate::Verdict::ResourceBound`] verdict carrying
//! [`crate::budget::BoundReason::Cancelled`] instead of being killed
//! mid-search — so partial statistics and journals stay intact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. The default token is never cancelled unless
/// [`CancelToken::cancel`] is called.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(b.is_cancelled());
        // Idempotent.
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancel_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel()).join().unwrap();
        assert!(token.is_cancelled());
    }
}
