//! The sequential execution configuration: shared memory plus a single
//! call stack.

use std::hash::{Hash, Hasher};

use kiss_exec::{Addr, Env, ExecError, Memory, Module, Value};
use kiss_lang::hir::{FuncId, LocalId, Place, VarRef};

/// One stack frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Program counter into the function's lowered body.
    pub pc: usize,
    /// Local variable values (parameters first).
    pub locals: Vec<Value>,
    /// Where the caller wants the return value stored (resolved in the
    /// caller's frame after this one pops).
    pub dest: Option<Place>,
}

impl Frame {
    /// A frame entering `func` with the given arguments; remaining
    /// locals are defaulted per their declared types.
    pub fn enter(module: &Module, func: FuncId, args: &[Value], dest: Option<Place>) -> Frame {
        let def = module.program.func(func);
        let mut locals: Vec<Value> = Vec::with_capacity(def.locals.len());
        for (i, l) in def.locals.iter().enumerate() {
            if i < args.len() {
                locals.push(args[i]);
            } else {
                locals.push(Value::default_for(l.ty.as_ref()));
            }
        }
        Frame { func, pc: 0, locals, dest }
    }
}

/// The whole sequential state: memory plus the call stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Globals and heap.
    pub mem: Memory,
    /// Call stack; the last frame is executing.
    pub stack: Vec<Frame>,
}

// Parallel BFS workers own configurations and share the frontier
// across threads; keep the whole state thread-mobile by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Config>();
};

impl Config {
    /// The initial configuration: initialized globals, empty heap, one
    /// frame entering `main`.
    pub fn initial(module: &Module) -> Config {
        Config {
            mem: Memory::initial(&module.program),
            stack: vec![Frame::enter(module, module.program.main, &[], None)],
        }
    }

    /// A 128-bit fingerprint for visited-state hashing.
    ///
    /// Computed in a **single traversal** of the configuration: every
    /// hash write feeds two independently seeded multiply-rotate lanes.
    /// Fingerprinting happens once per recorded state on the engines'
    /// hot path — for driver harnesses the heap holds wide extension
    /// structs, so both the old scheme's double traversal and its
    /// SipHash lanes were measurable. Two 64-bit lanes with distinct
    /// odd multipliers and a splitmix64 finalizer keep the 128-bit
    /// collision behaviour (verified against the old double-pass
    /// scheme in the tests below) at a fraction of the cost.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut h = TwoLaneHasher::new();
        self.hash(&mut h);
        h.finish_pair()
    }

    /// The incremental half of a **split fingerprint**: hashes the
    /// whole configuration *except* the top frame's program counter.
    ///
    /// On a nondeterministic branch every alternative shares memory,
    /// stack and locals with its siblings and differs only in the top
    /// pc, so the BFS store hashes the common part once and derives
    /// each alternative's fingerprint with [`FpBase::with_pc`] — one
    /// traversal plus N O(1) finishes instead of N full traversals.
    ///
    /// Split fingerprints hash their writes in a different order than
    /// [`Config::fingerprint`], so the two schemes must not be mixed
    /// within one visited table.
    pub fn fingerprint_base(&self) -> FpBase {
        let mut h = TwoLaneHasher::new();
        // Memory goes in through the cached per-chunk digests: chunks
        // shared with sibling states were already digested once, so a
        // branch re-hashes only the chunks this path actually wrote.
        self.mem.globals.hash_cached(&mut h);
        self.mem.heap.hash_cached(&mut h);
        h.write_usize(self.stack.len());
        let top = self.stack.len().wrapping_sub(1);
        for (i, frame) in self.stack.iter().enumerate() {
            frame.func.hash(&mut h);
            if i != top {
                frame.pc.hash(&mut h);
            }
            frame.locals.hash(&mut h);
            frame.dest.hash(&mut h);
        }
        FpBase { h }
    }

    /// The top frame's program counter — the part a split fingerprint
    /// defers; panics on an empty stack (never fingerprinted).
    pub fn top_pc(&self) -> usize {
        self.stack.last().expect("fingerprinted config has a frame").pc
    }
}

/// A partially computed [`Config`] fingerprint: everything but the top
/// frame's pc is already mixed in. `Copy`, so deriving a sibling's
/// fingerprint copies two lane states and finishes.
#[derive(Clone, Copy)]
pub struct FpBase {
    h: TwoLaneHasher,
}

impl FpBase {
    /// Completes the fingerprint for the alternative whose top frame
    /// sits at `pc`.
    #[inline]
    pub fn with_pc(&self, pc: usize) -> (u64, u64) {
        let mut h = self.h;
        h.write_usize(pc);
        h.finish_pair()
    }
}

/// A 128-bit single-pass fingerprint of any hashable value, using the
/// same two-lane scheme as [`Config::fingerprint`]. The summary engine
/// keys its per-body visited tables on interprocedural `State`s rather
/// than `Config`s, and this saves it the historical double
/// `DefaultHasher` traversal.
pub fn fingerprint_of<T: Hash>(value: &T) -> (u64, u64) {
    let mut h = TwoLaneHasher::new();
    value.hash(&mut h);
    h.finish_pair()
}

/// One fingerprint lane: xor-multiply-rotate over 64-bit words with a
/// splitmix64 finalizer. Not cryptographic, but avalanche-tested mixing
/// is plenty for visited-state dedup where a collision needs to happen
/// on *both* independently parameterized lanes at once.
#[derive(Clone, Copy)]
struct Lane {
    state: u64,
    mult: u64,
}

impl Lane {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(23) ^ v).wrapping_mul(self.mult);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche over the lane state.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A [`Hasher`] that feeds every write into two [`Lane`]s with
/// different seeds and multipliers, yielding a 128-bit result from one
/// traversal of the hashed value.
#[derive(Clone, Copy)]
struct TwoLaneHasher {
    lo: Lane,
    hi: Lane,
}

impl TwoLaneHasher {
    fn new() -> Self {
        TwoLaneHasher {
            // Seeds: pi fraction bits; multipliers: golden-ratio and
            // xxhash primes (both odd, so multiplication is invertible).
            lo: Lane { state: 0x243F_6A88_85A3_08D3, mult: 0x9E37_79B9_7F4A_7C15 },
            hi: Lane { state: 0x1319_8A2E_0370_7344, mult: 0xC2B2_AE3D_27D4_EB4F },
        }
    }

    #[inline]
    fn mix(&mut self, v: u64) {
        self.lo.mix(v);
        self.hi.mix(v);
    }

    fn finish_pair(&self) -> (u64, u64) {
        (self.lo.finish(), self.hi.finish())
    }
}

macro_rules! forward_write {
    ($($method:ident: $ty:ty),* $(,)?) => {
        $(
            #[inline]
            fn $method(&mut self, i: $ty) {
                self.mix(i as u64);
            }
        )*
    };
}

impl Hasher for TwoLaneHasher {
    fn finish(&self) -> u64 {
        self.lo.finish()
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut it = bytes.chunks_exact(8);
        for chunk in &mut it {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = it.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
        // Length disambiguates "short write" from "padded-zero write".
        self.mix(bytes.len() as u64);
    }

    forward_write! {
        write_u8: u8, write_u16: u16, write_u32: u32, write_u64: u64,
        write_usize: usize,
        write_i8: i8, write_i16: i16, write_i32: i32, write_i64: i64,
        write_isize: isize,
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
}

/// [`Env`] implementation: a module plus a mutable configuration.
pub struct SeqEnv<'a> {
    /// The lowered program.
    pub module: &'a Module,
    /// The configuration being stepped.
    pub config: &'a mut Config,
}

impl SeqEnv<'_> {
    fn top(&self) -> &Frame {
        self.config.stack.last().expect("empty stack")
    }

    fn top_mut(&mut self) -> &mut Frame {
        self.config.stack.last_mut().expect("empty stack")
    }
}

impl Env for SeqEnv<'_> {
    fn read_var(&self, v: VarRef) -> Value {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize],
            VarRef::Local(LocalId(l)) => self.top().locals[l as usize],
        }
    }

    fn write_var(&mut self, v: VarRef, val: Value) {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize] = val,
            VarRef::Local(LocalId(l)) => self.top_mut().locals[l as usize] = val,
        }
    }

    fn read_addr(&self, a: Addr) -> Result<Value, ExecError> {
        match a {
            Addr::Global(g) => Ok(self.config.mem.globals[g.0 as usize]),
            Addr::Heap { obj, field } => self
                .config
                .mem
                .heap
                .get(obj as usize)
                .and_then(|o| o.fields.get(field as usize))
                .copied()
                .ok_or(ExecError::BadField),
            Addr::Local { tid: _, frame, local } => self
                .config
                .stack
                .get(frame as usize)
                .and_then(|f| f.locals.get(local as usize))
                .copied()
                .ok_or(ExecError::DanglingLocal),
        }
    }

    fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError> {
        match a {
            Addr::Global(g) => {
                self.config.mem.globals[g.0 as usize] = val;
                Ok(())
            }
            Addr::Heap { obj, field } => {
                let cell = self
                    .config
                    .mem
                    .heap
                    .get_mut(obj as usize)
                    .and_then(|o| o.fields.get_mut(field as usize))
                    .ok_or(ExecError::BadField)?;
                *cell = val;
                Ok(())
            }
            Addr::Local { tid: _, frame, local } => {
                let cell = self
                    .config
                    .stack
                    .get_mut(frame as usize)
                    .and_then(|f| f.locals.get_mut(local as usize))
                    .ok_or(ExecError::DanglingLocal)?;
                *cell = val;
                Ok(())
            }
        }
    }

    fn addr_of_var(&self, v: VarRef) -> Addr {
        match v {
            VarRef::Global(g) => Addr::Global(g),
            VarRef::Local(LocalId(l)) => Addr::Local {
                tid: 0,
                frame: (self.config.stack.len() - 1) as u32,
                local: l,
            },
        }
    }

    fn malloc(&mut self, sid: kiss_lang::hir::StructId) -> u32 {
        self.config.mem.malloc(&self.module.program, sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn initial_config_enters_main() {
        let m = module("int g = 7; void main() { int x; bool b; skip; }");
        let c = Config::initial(&m);
        assert_eq!(c.stack.len(), 1);
        assert_eq!(c.stack[0].func, m.program.main);
        assert_eq!(c.stack[0].locals, vec![Value::Int(0), Value::Bool(false)]);
        assert_eq!(c.mem.globals, vec![Value::Int(7)]);
    }

    #[test]
    fn frame_enter_binds_args_then_defaults() {
        let m = module("void f(int a, bool b) { int c; skip; } void main() { f(1, true); }");
        let f = m.program.func_by_name("f").unwrap();
        let fr = Frame::enter(&m, f, &[Value::Int(9), Value::Bool(true)], None);
        assert_eq!(fr.locals, vec![Value::Int(9), Value::Bool(true), Value::Int(0)]);
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let m = module("int g; void main() { g = 1; }");
        let c1 = Config::initial(&m);
        let mut c2 = c1.clone();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        c2.mem.globals[0] = Value::Int(1);
        assert_ne!(c1.fingerprint(), c2.fingerprint());
        let mut c3 = c1.clone();
        c3.stack[0].pc = 1;
        assert_ne!(c1.fingerprint(), c3.fingerprint());
    }

    #[test]
    fn env_reads_and_writes_locals_and_globals() {
        let m = module("int g; void main() { int x; skip; }");
        let mut c = Config::initial(&m);
        let mut env = SeqEnv { module: &m, config: &mut c };
        env.write_var(VarRef::Global(kiss_lang::GlobalId(0)), Value::Int(5));
        env.write_var(VarRef::Local(LocalId(0)), Value::Int(6));
        assert_eq!(env.read_var(VarRef::Global(kiss_lang::GlobalId(0))), Value::Int(5));
        assert_eq!(env.read_var(VarRef::Local(LocalId(0))), Value::Int(6));
        // Address-of local points at the top frame.
        let a = env.addr_of_var(VarRef::Local(LocalId(0)));
        assert_eq!(env.read_addr(a), Ok(Value::Int(6)));
    }

    /// The historical fingerprint: two complete `DefaultHasher`
    /// traversals, the second seeded. Kept as the distribution oracle:
    /// any family of configurations the old scheme kept distinct, the
    /// new single-pass hasher must keep distinct too (no new
    /// collisions), and equal configurations must still fingerprint
    /// equally (guaranteed structurally — fingerprint is a pure
    /// function of the hashed writes).
    fn double_pass_fingerprint(c: &Config) -> (u64, u64) {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        c.hash(&mut h1);
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        0xDEAD_BEEFu64.hash(&mut h2);
        c.hash(&mut h2);
        (h1.finish(), h2.finish())
    }

    #[test]
    fn single_pass_fingerprint_is_deterministic_across_clones() {
        let m = module(
            "struct D { int x; int y; }
             int g; bool b;
             void f(int a) { int l; l = a; }
             void main() { int x; D *p; p = malloc(D); f(3); }",
        );
        let mut c = Config::initial(&m);
        // Equal configurations fingerprint equally at every mutation
        // step: globals, pc, extra frames, heap objects — every part of
        // the hashed structure.
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        c.mem.globals[0] = Value::Int(41);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        c.stack[0].pc = 2;
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        let f = m.program.func_by_name("f").unwrap();
        c.stack.push(Frame::enter(&m, f, &[Value::Int(7)], None));
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        let sid = kiss_lang::hir::StructId(0);
        c.mem.malloc(&m.program, sid);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
    }

    #[test]
    fn fingerprint_distribution_matches_the_double_pass_scheme() {
        // A family of systematically distinct configurations spanning
        // globals, pc, stack depth, and heap contents. The old
        // double-pass scheme kept all of them distinct; the single-pass
        // hasher must introduce no new collisions.
        let m = module(
            "struct D { int x; int y; }
             int g; int h;
             void f(int a) { int l; l = a; }
             void main() { D *p; g = 1; h = 2; }",
        );
        let mut old_seen = std::collections::HashSet::new();
        let mut new_seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for g in 0..40 {
            for h in 0..40 {
                for shape in 0..4 {
                    let mut c = Config::initial(&m);
                    c.mem.globals[0] = Value::Int(g);
                    c.mem.globals[1] = Value::Int(h);
                    match shape {
                        0 => {}
                        1 => c.stack[0].pc = 1,
                        2 => {
                            let f = m.program.func_by_name("f").unwrap();
                            c.stack.push(Frame::enter(&m, f, &[Value::Int(g)], None));
                        }
                        _ => {
                            let obj = c.mem.malloc(&m.program, kiss_lang::hir::StructId(0));
                            c.mem.heap[obj as usize].fields[0] = Value::Int(h);
                        }
                    }
                    old_seen.insert(double_pass_fingerprint(&c));
                    new_seen.insert(c.fingerprint());
                    count += 1;
                }
            }
        }
        // The old scheme kept every configuration distinct...
        assert_eq!(old_seen.len(), count);
        // ...and the new one must too: no new collisions.
        assert_eq!(new_seen.len(), count);
    }

    #[test]
    fn split_fingerprints_agree_with_a_direct_computation() {
        let m = module(
            "int g; void f(int a) { int l; l = a; } void main() { g = 1; g = 2; }",
        );
        let mut c = Config::initial(&m);
        c.mem.globals[0] = Value::Int(3);
        // Sibling alternatives: same base, different top pc. Each must
        // equal the split fingerprint computed from scratch on a config
        // that actually sits at that pc, and distinct pcs must yield
        // distinct fingerprints.
        let base = c.fingerprint_base();
        let mut seen = std::collections::HashSet::new();
        for pc in 0..3usize {
            let mut alt = c.clone();
            alt.stack[0].pc = pc;
            assert_eq!(base.with_pc(pc), alt.fingerprint_base().with_pc(alt.top_pc()));
            assert!(seen.insert(base.with_pc(pc)), "pc {pc} collided");
        }
        // The base is sensitive to everything below the top pc.
        let mut other = c.clone();
        other.mem.globals[0] = Value::Int(4);
        assert_ne!(base.with_pc(0), other.fingerprint_base().with_pc(0));
        let f = m.program.func_by_name("f").unwrap();
        let mut deeper = c.clone();
        deeper.stack.push(Frame::enter(&m, f, &[Value::Int(1)], None));
        assert_ne!(base.with_pc(0), deeper.fingerprint_base().with_pc(0));
    }

    #[test]
    fn fingerprint_of_matches_itself_and_separates_values() {
        assert_eq!(fingerprint_of(&(1u64, 2u64)), fingerprint_of(&(1u64, 2u64)));
        assert_ne!(fingerprint_of(&(1u64, 2u64)), fingerprint_of(&(2u64, 1u64)));
    }

    #[test]
    fn dangling_local_read_is_an_error() {
        let m = module("void main() { int x; skip; }");
        let mut c = Config::initial(&m);
        let mut env = SeqEnv { module: &m, config: &mut c };
        let bad = Addr::Local { tid: 0, frame: 7, local: 0 };
        assert_eq!(env.read_addr(bad), Err(ExecError::DanglingLocal));
        assert_eq!(env.write_addr(bad, Value::Int(1)), Err(ExecError::DanglingLocal));
    }
}
