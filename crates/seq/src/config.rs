//! The sequential execution configuration: shared memory plus a single
//! call stack.

use std::hash::{Hash, Hasher};

use kiss_exec::{Addr, Env, ExecError, Memory, Module, Value};
use kiss_lang::hir::{FuncId, LocalId, Place, VarRef};

/// One stack frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Program counter into the function's lowered body.
    pub pc: usize,
    /// Local variable values (parameters first).
    pub locals: Vec<Value>,
    /// Where the caller wants the return value stored (resolved in the
    /// caller's frame after this one pops).
    pub dest: Option<Place>,
}

impl Frame {
    /// A frame entering `func` with the given arguments; remaining
    /// locals are defaulted per their declared types.
    pub fn enter(module: &Module, func: FuncId, args: &[Value], dest: Option<Place>) -> Frame {
        let def = module.program.func(func);
        let mut locals: Vec<Value> = Vec::with_capacity(def.locals.len());
        for (i, l) in def.locals.iter().enumerate() {
            if i < args.len() {
                locals.push(args[i]);
            } else {
                locals.push(Value::default_for(l.ty.as_ref()));
            }
        }
        Frame { func, pc: 0, locals, dest }
    }
}

/// The whole sequential state: memory plus the call stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// Globals and heap.
    pub mem: Memory,
    /// Call stack; the last frame is executing.
    pub stack: Vec<Frame>,
}

impl Config {
    /// The initial configuration: initialized globals, empty heap, one
    /// frame entering `main`.
    pub fn initial(module: &Module) -> Config {
        Config {
            mem: Memory::initial(&module.program),
            stack: vec![Frame::enter(module, module.program.main, &[], None)],
        }
    }

    /// A 128-bit fingerprint for visited-state hashing.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h1);
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        0xDEAD_BEEFu64.hash(&mut h2);
        self.hash(&mut h2);
        (h1.finish(), h2.finish())
    }
}

/// [`Env`] implementation: a module plus a mutable configuration.
pub struct SeqEnv<'a> {
    /// The lowered program.
    pub module: &'a Module,
    /// The configuration being stepped.
    pub config: &'a mut Config,
}

impl SeqEnv<'_> {
    fn top(&self) -> &Frame {
        self.config.stack.last().expect("empty stack")
    }

    fn top_mut(&mut self) -> &mut Frame {
        self.config.stack.last_mut().expect("empty stack")
    }
}

impl Env for SeqEnv<'_> {
    fn read_var(&self, v: VarRef) -> Value {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize],
            VarRef::Local(LocalId(l)) => self.top().locals[l as usize],
        }
    }

    fn write_var(&mut self, v: VarRef, val: Value) {
        match v {
            VarRef::Global(g) => self.config.mem.globals[g.0 as usize] = val,
            VarRef::Local(LocalId(l)) => self.top_mut().locals[l as usize] = val,
        }
    }

    fn read_addr(&self, a: Addr) -> Result<Value, ExecError> {
        match a {
            Addr::Global(g) => Ok(self.config.mem.globals[g.0 as usize]),
            Addr::Heap { obj, field } => self
                .config
                .mem
                .heap
                .get(obj as usize)
                .and_then(|o| o.fields.get(field as usize))
                .copied()
                .ok_or(ExecError::BadField),
            Addr::Local { tid: _, frame, local } => self
                .config
                .stack
                .get(frame as usize)
                .and_then(|f| f.locals.get(local as usize))
                .copied()
                .ok_or(ExecError::DanglingLocal),
        }
    }

    fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError> {
        match a {
            Addr::Global(g) => {
                self.config.mem.globals[g.0 as usize] = val;
                Ok(())
            }
            Addr::Heap { obj, field } => {
                let cell = self
                    .config
                    .mem
                    .heap
                    .get_mut(obj as usize)
                    .and_then(|o| o.fields.get_mut(field as usize))
                    .ok_or(ExecError::BadField)?;
                *cell = val;
                Ok(())
            }
            Addr::Local { tid: _, frame, local } => {
                let cell = self
                    .config
                    .stack
                    .get_mut(frame as usize)
                    .and_then(|f| f.locals.get_mut(local as usize))
                    .ok_or(ExecError::DanglingLocal)?;
                *cell = val;
                Ok(())
            }
        }
    }

    fn addr_of_var(&self, v: VarRef) -> Addr {
        match v {
            VarRef::Global(g) => Addr::Global(g),
            VarRef::Local(LocalId(l)) => Addr::Local {
                tid: 0,
                frame: (self.config.stack.len() - 1) as u32,
                local: l,
            },
        }
    }

    fn malloc(&mut self, sid: kiss_lang::hir::StructId) -> u32 {
        self.config.mem.malloc(&self.module.program, sid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn module(src: &str) -> Module {
        Module::lower(parse_and_lower(src).unwrap())
    }

    #[test]
    fn initial_config_enters_main() {
        let m = module("int g = 7; void main() { int x; bool b; skip; }");
        let c = Config::initial(&m);
        assert_eq!(c.stack.len(), 1);
        assert_eq!(c.stack[0].func, m.program.main);
        assert_eq!(c.stack[0].locals, vec![Value::Int(0), Value::Bool(false)]);
        assert_eq!(c.mem.globals, vec![Value::Int(7)]);
    }

    #[test]
    fn frame_enter_binds_args_then_defaults() {
        let m = module("void f(int a, bool b) { int c; skip; } void main() { f(1, true); }");
        let f = m.program.func_by_name("f").unwrap();
        let fr = Frame::enter(&m, f, &[Value::Int(9), Value::Bool(true)], None);
        assert_eq!(fr.locals, vec![Value::Int(9), Value::Bool(true), Value::Int(0)]);
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let m = module("int g; void main() { g = 1; }");
        let c1 = Config::initial(&m);
        let mut c2 = c1.clone();
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        c2.mem.globals[0] = Value::Int(1);
        assert_ne!(c1.fingerprint(), c2.fingerprint());
        let mut c3 = c1.clone();
        c3.stack[0].pc = 1;
        assert_ne!(c1.fingerprint(), c3.fingerprint());
    }

    #[test]
    fn env_reads_and_writes_locals_and_globals() {
        let m = module("int g; void main() { int x; skip; }");
        let mut c = Config::initial(&m);
        let mut env = SeqEnv { module: &m, config: &mut c };
        env.write_var(VarRef::Global(kiss_lang::GlobalId(0)), Value::Int(5));
        env.write_var(VarRef::Local(LocalId(0)), Value::Int(6));
        assert_eq!(env.read_var(VarRef::Global(kiss_lang::GlobalId(0))), Value::Int(5));
        assert_eq!(env.read_var(VarRef::Local(LocalId(0))), Value::Int(6));
        // Address-of local points at the top frame.
        let a = env.addr_of_var(VarRef::Local(LocalId(0)));
        assert_eq!(env.read_addr(a), Ok(Value::Int(6)));
    }

    #[test]
    fn dangling_local_read_is_an_error() {
        let m = module("void main() { int x; skip; }");
        let mut c = Config::initial(&m);
        let mut env = SeqEnv { module: &m, config: &mut c };
        let bad = Addr::Local { tid: 0, frame: 7, local: 0 };
        assert_eq!(env.read_addr(bad), Err(ExecError::DanglingLocal));
        assert_eq!(env.write_addr(bad, Value::Int(1)), Err(ExecError::DanglingLocal));
    }
}
