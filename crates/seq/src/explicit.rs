//! Explicit-state sequential model checker.
//!
//! Depth-first search over whole configurations (globals + heap + call
//! stack) with visited-state fingerprinting. Sound and complete for
//! finite-state sequential programs; budget-bounded otherwise. This is
//! the engine KISS feeds the sequentialized program to, playing the
//! role SLAM plays in the paper's Figure 1.

use kiss_exec::{eval, Env, Instr, Module, Value};
use kiss_lang::hir::{CallTarget, FuncId};
use kiss_obs::Obs;

use crate::budget::{BoundReason, Budget, Meter};
use crate::cancel::CancelToken;
use crate::config::{Config, Frame, SeqEnv};
use crate::stats::EngineStats;
use crate::store::{StoreKind, VisitedSet};
use crate::verdict::{ErrorTrace, TraceStep, Verdict};

/// The explicit-state checker.
#[derive(Debug, Clone)]
pub struct ExplicitChecker<'a> {
    module: &'a Module,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
    store: StoreKind,
}

impl<'a> ExplicitChecker<'a> {
    /// Creates a checker over a lowered module.
    pub fn new(module: &'a Module) -> Self {
        ExplicitChecker {
            module,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
            store: StoreKind::default(),
        }
    }

    /// Selects the state-storage implementation: the interned
    /// open-addressing table (default) or the legacy `HashSet`.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cancellation token polled from the search loop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the search emits throttled progress and
    /// budget-violation events through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the check to the first assertion failure, runtime error,
    /// exhaustion of the state space, or budget trip.
    pub fn check(&self) -> Verdict {
        self.check_with_stats().0
    }

    /// Like [`ExplicitChecker::check`], also returning search
    /// statistics.
    pub fn check_with_stats(&self) -> (Verdict, EngineStats) {
        let mut search = Search {
            module: self.module,
            meter: Meter::new(self.budget, self.cancel.clone())
                .with_observer(self.obs.clone(), "explicit"),
            visited: VisitedSet::new(self.store),
            trace: Vec::with_capacity(256),
            pending: {
                let mut pending = Vec::with_capacity(32);
                pending.push((Config::initial(self.module), 0));
                pending
            },
            arg_scratch: Vec::new(),
            paths: 0,
            frontier_peak: 1,
        };
        let verdict = search.run();
        let usage = search.meter.usage;
        let stats = EngineStats {
            steps: usage.steps,
            states: usage.states,
            paths: search.paths,
            frontier_peak: search.frontier_peak,
            states_stored: search.visited.len(),
            store_bytes: search.visited.bytes(),
            ..EngineStats::default()
        };
        (verdict, stats)
    }
}

struct Search<'a> {
    module: &'a Module,
    meter: Meter,
    visited: VisitedSet,
    trace: Vec<TraceStep>,
    pending: Vec<(Config, usize)>,
    /// Reusable buffer for evaluated call arguments, so dispatching a
    /// call does not allocate a fresh vector per instruction.
    arg_scratch: Vec<Value>,
    paths: u64,
    frontier_peak: usize,
}

enum PathEnd {
    /// Path finished without error (termination, prune, or revisit).
    Done,
    /// An error ends the whole search.
    Stop(Verdict),
}

impl Search<'_> {
    fn run(&mut self) -> Verdict {
        while let Some((config, trace_len)) = self.pending.pop() {
            self.trace.truncate(trace_len);
            match self.run_path(config) {
                PathEnd::Done => self.paths += 1,
                PathEnd::Stop(v) => return v,
            }
        }
        Verdict::Pass
    }

    /// Records a state fingerprint; `Ok(false)` if it was already
    /// visited (path should be pruned), `Err` when the store's id space
    /// ran out (the search stops as inconclusive).
    fn record(&mut self, config: &Config) -> Result<bool, Verdict> {
        match self.visited.insert(config.fingerprint()) {
            Ok(true) => {
                self.meter.note_states(self.visited.len());
                Ok(true)
            }
            Ok(false) => Ok(false),
            Err(crate::store::StateCapExceeded) => Err(Verdict::ResourceBound {
                steps: self.meter.usage.steps,
                states: self.meter.usage.states,
                reason: BoundReason::StateCap,
            }),
        }
    }

    /// Runs one path to completion, pushing alternatives onto
    /// `self.pending` at nondeterministic branch points.
    ///
    /// Instructions are **borrowed** from the module body rather than
    /// cloned per executed step: `Call` argument lists and `NondetJump`
    /// target vectors are heap-backed, and the per-step clone showed up
    /// as the single largest line in the interpreter profile.
    fn run_path(&mut self, mut config: Config) -> PathEnd {
        let module = self.module;
        loop {
            let Some(frame) = config.stack.last() else {
                return PathEnd::Done; // program finished
            };
            if let Err(reason) = self.meter.tick() {
                return PathEnd::Stop(Verdict::ResourceBound {
                    steps: self.meter.usage.steps,
                    states: self.meter.usage.states,
                    reason,
                });
            }
            let func = frame.func;
            let pc = frame.pc;
            let body = module.body(func);
            let meta = body.meta[pc];
            self.trace.push(TraceStep { func, pc, origin: meta.origin, span: meta.span });

            match &body.instrs[pc] {
                Instr::Assign(place, rv) => {
                    let mut env = SeqEnv { module, config: &mut config };
                    if let Err(e) = eval::exec_assign(&mut env, place, rv) {
                        return PathEnd::Stop(Verdict::RuntimeError(e, self.snapshot(&config)));
                    }
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
                Instr::Assert(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return PathEnd::Stop(Verdict::Fail(self.snapshot(&config))),
                        Err(e) => return PathEnd::Stop(Verdict::RuntimeError(e, self.snapshot(&config))),
                    }
                }
                Instr::Assume(cond) => {
                    let env = SeqEnv { module, config: &mut config };
                    match eval::eval_cond(&env, cond) {
                        Ok(true) => config.stack.last_mut().expect("nonempty").pc += 1,
                        Ok(false) => return PathEnd::Done, // pruned path
                        Err(e) => return PathEnd::Stop(Verdict::RuntimeError(e, self.snapshot(&config))),
                    }
                }
                Instr::Call { dest, target, args } => {
                    match self.record(&config) {
                        Ok(true) => {}
                        Ok(false) => return PathEnd::Done,
                        Err(v) => return PathEnd::Stop(v),
                    }
                    // One env borrow per dispatch: resolve the callee,
                    // check arity, and evaluate the arguments into the
                    // reusable scratch buffer under a single borrow.
                    self.arg_scratch.clear();
                    let resolved = {
                        let env = SeqEnv { module, config: &mut config };
                        resolve_target(&env, *target).and_then(|callee| {
                            let def = module.program.func(callee);
                            if def.param_count as usize != args.len() {
                                return Err(kiss_exec::ExecError::ArityMismatch {
                                    func: callee,
                                    expected: def.param_count,
                                    got: args.len() as u32,
                                });
                            }
                            self.arg_scratch
                                .extend(args.iter().map(|a| eval::eval_operand(&env, a)));
                            Ok(callee)
                        })
                    };
                    let callee = match resolved {
                        Ok(f) => f,
                        Err(e) => return PathEnd::Stop(Verdict::RuntimeError(e, self.snapshot(&config))),
                    };
                    // Advance the caller past the call before pushing.
                    config.stack.last_mut().expect("nonempty").pc += 1;
                    let frame = Frame::enter(module, callee, &self.arg_scratch, *dest);
                    config.stack.push(frame);
                }
                Instr::Async { .. } => {
                    return PathEnd::Stop(Verdict::RuntimeError(
                        kiss_exec::ExecError::AsyncInSequential,
                        self.snapshot(&config),
                    ));
                }
                Instr::Return(op) => {
                    let ret_val = {
                        let env = SeqEnv { module, config: &mut config };
                        op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null)
                    };
                    let finished = config.stack.pop().expect("nonempty");
                    if config.stack.is_empty() {
                        return PathEnd::Done;
                    }
                    if let Some(dest) = finished.dest {
                        let mut env = SeqEnv { module, config: &mut config };
                        if let Err(e) = eval::place_addr(&env, &dest)
                            .and_then(|addr| env.write_addr(addr, ret_val))
                        {
                            return PathEnd::Stop(Verdict::RuntimeError(e, self.snapshot(&config)));
                        }
                    }
                }
                Instr::Jump(target) => {
                    // No visited check here: every cycle in lowered code
                    // passes through a NondetJump (the `iter` header) or
                    // a Call, which record states.
                    config.stack.last_mut().expect("nonempty").pc = *target;
                }
                Instr::NondetJump(targets) => {
                    match self.record(&config) {
                        Ok(true) => {}
                        Ok(false) => return PathEnd::Done,
                        Err(v) => return PathEnd::Stop(v),
                    }
                    match targets.split_first() {
                        None => return PathEnd::Done, // no branch: dead end
                        Some((&first, rest)) => {
                            self.pending.reserve(rest.len());
                            for &alt in rest.iter().rev() {
                                let mut alt_config = config.clone();
                                alt_config.stack.last_mut().expect("nonempty").pc = alt;
                                self.pending.push((alt_config, self.trace.len()));
                            }
                            self.frontier_peak = self.frontier_peak.max(self.pending.len() + 1);
                            config.stack.last_mut().expect("nonempty").pc = first;
                        }
                    }
                }
                Instr::AtomicBegin | Instr::AtomicEnd => {
                    // Atomicity is vacuous sequentially.
                    config.stack.last_mut().expect("nonempty").pc += 1;
                }
            }
        }
    }

    fn snapshot(&self, config: &Config) -> ErrorTrace {
        ErrorTrace { steps: self.trace.clone(), globals: config.mem.globals.to_vec() }
    }
}

/// Resolves a call target to a function id. Shared by the sequential
/// engines and the kiss-ltl product engine (which steps instructions
/// itself, one at a time, so the Büchi automaton can branch anywhere).
pub fn resolve_target(env: &impl Env, target: CallTarget) -> Result<FuncId, kiss_exec::ExecError> {
    match target {
        CallTarget::Direct(f) => Ok(f),
        CallTarget::Indirect(v) => match env.read_var(v) {
            Value::Fn(f) => Ok(f),
            other => Err(kiss_exec::ExecError::NotAFunction { found: other.type_name() }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::parse_and_lower;

    fn check(src: &str) -> Verdict {
        let module = Module::lower(parse_and_lower(src).unwrap());
        ExplicitChecker::new(&module).check()
    }

    #[test]
    fn passing_program_passes() {
        assert!(check("int g; void main() { g = 1; assert g == 1; }").is_pass());
    }

    #[test]
    fn failing_assert_is_found() {
        let v = check("int g; void main() { g = 1; assert g == 2; }");
        assert!(v.is_fail(), "{v:?}");
    }

    #[test]
    fn failure_hidden_behind_choice_is_found() {
        let v = check("int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }");
        assert!(v.is_fail());
    }

    #[test]
    fn assume_prunes_paths() {
        // Both branches assign, but the failing branch is pruned by an
        // assume.
        let v = check(
            "int g; bool c; void main() { c = false; choice { assume c; g = 2; [] assume !c; g = 1; } assert g == 1; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn iter_explores_bounded_loops() {
        // g can be incremented any number of times; assert g < 3 must
        // fail on the path with 3 iterations.
        let v = check("int g; void main() { iter { g = g + 1; assume g <= 3; } assert g < 3; }");
        assert!(v.is_fail());
    }

    #[test]
    fn revisited_states_are_pruned_so_infinite_loops_terminate() {
        // Without state hashing this loop never terminates: g toggles
        // between 0 and 1 forever.
        let v = check("int g; void main() { iter { g = 1 - g; } assert g <= 1; }");
        assert!(v.is_pass());
    }

    #[test]
    fn calls_bind_parameters_and_return_values() {
        let v = check(
            "int add(int a, int b) { int r; r = a + b; return r; }
             void main() { int x; x = add(2, 3); assert x == 5; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn recursion_terminates_via_state_hashing_or_fails() {
        // Finite-state recursion: f flips g then recurses; states
        // repeat, so the search terminates.
        let v = check(
            "bool g; void f() { g = !g; if (g) { f(); } }
             void main() { f(); assert !g || g; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn indirect_calls_resolve_through_variables() {
        let v = check(
            "int g; void work() { g = 9; }
             void main() { fn f; f = work; f(); assert g == 9; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn calling_null_is_a_runtime_error() {
        let v = check("void main() { fn f; f(); }");
        assert!(matches!(v, Verdict::RuntimeError(kiss_exec::ExecError::NotAFunction { .. }, _)), "{v:?}");
    }

    #[test]
    fn async_is_rejected_sequentially() {
        let v = check("void w() { skip; } void main() { async w(); }");
        assert!(matches!(v, Verdict::RuntimeError(kiss_exec::ExecError::AsyncInSequential, _)));
    }

    #[test]
    fn budget_trips_on_unbounded_counting() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } assert g >= 0; }").unwrap(),
        );
        let v = ExplicitChecker::new(&module)
            .with_budget(Budget::steps_states(10_000, 500))
            .check();
        assert!(v.is_inconclusive(), "{v:?}");
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert!(matches!(reason, crate::budget::BoundReason::Steps | crate::budget::BoundReason::States));
    }

    #[test]
    fn pre_cancelled_token_stops_before_searching() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } assert g >= 0; }").unwrap(),
        );
        let cancel = crate::cancel::CancelToken::new();
        cancel.cancel();
        let (v, stats) = ExplicitChecker::new(&module).with_cancel(cancel).check_with_stats();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, crate::budget::BoundReason::Cancelled);
        // The very first tick observes the flag.
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } assert g >= 0; }").unwrap(),
        );
        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = ExplicitChecker::new(&module).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, crate::budget::BoundReason::Deadline);
    }

    #[test]
    fn error_trace_leads_to_the_assert() {
        let src = "int g; void main() { g = 1; g = 2; assert g == 1; }";
        let module = Module::lower(parse_and_lower(src).unwrap());
        let v = ExplicitChecker::new(&module).check();
        let Verdict::Fail(trace) = v else { panic!("expected failure") };
        // Last step is the assert itself.
        let last = trace.steps.last().unwrap();
        let body = module.body(module.program.main);
        assert!(matches!(body.instrs[last.pc], Instr::Assert(_)));
        // Trace contains both assignments before it.
        assert!(trace.steps.len() >= 3);
    }

    #[test]
    fn heap_state_is_part_of_the_search() {
        let v = check(
            "struct D { int x; }
             void main() {
                D *a;
                D *b;
                a = malloc(D);
                b = malloc(D);
                a->x = 1;
                b->x = 2;
                assert a->x == 1;
                assert b->x == 2;
             }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn stats_count_steps_and_states() {
        let module =
            Module::lower(parse_and_lower("int g; void main() { choice { g = 1; [] g = 2; } }").unwrap());
        let (v, stats) = ExplicitChecker::new(&module).check_with_stats();
        assert!(v.is_pass());
        assert!(stats.steps > 0);
        assert!(stats.states > 0);
        assert_eq!(stats.paths, 2);
    }

    #[test]
    fn while_loop_with_condition_is_exact() {
        let v = check(
            "int g; void main() { int i; i = 0; while (i < 4) { i = i + 1; g = g + 2; } assert g == 8; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn dead_assume_after_while_exit() {
        let v = check("void main() { int i; while (i < 2) { i = i + 1; } assert i == 2; }");
        assert!(v.is_pass(), "{v:?}");
    }
}

#[cfg(test)]
mod pointer_tests {
    use super::*;
    use crate::budget::Budget;
    use kiss_lang::parse_and_lower;

    fn check(src: &str) -> Verdict {
        let module = Module::lower(parse_and_lower(src).unwrap());
        ExplicitChecker::new(&module).with_budget(Budget::small()).check()
    }

    #[test]
    fn address_of_local_passed_to_callee_is_writable() {
        // The callee writes through a pointer into the caller's frame.
        let v = check(
            "void set(int *p) { *p = 9; }
             void main() { int x; int *q; q = &x; set(q); assert x == 9; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn pointer_into_popped_frame_is_dangling() {
        // mk() returns the address of its own local; any later
        // dereference is a runtime error, not silent garbage.
        let v = check(
            "int g;
             int *mk() { int x; int *p; x = 5; p = &x; return p; }
             void main() { int *q; int v; q = mk(); v = *q; g = v; }",
        );
        assert!(
            matches!(v, Verdict::RuntimeError(kiss_exec::ExecError::DanglingLocal, _)),
            "{v:?}"
        );
    }

    #[test]
    fn call_result_can_target_a_heap_field() {
        let v = check(
            "struct D { int x; }
             int five() { return 5; }
             void main() { D *e; e = malloc(D); e->x = five(); assert e->x == 5; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn deref_destination_of_call_result() {
        let v = check(
            "int g;
             int five() { return 5; }
             void main() { int *p; p = &g; *p = five(); assert g == 5; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn chained_function_pointers() {
        let v = check(
            "int g;
             void a() { g = g + 1; }
             void b() { g = g + 10; }
             void main() {
                fn f;
                choice { f = a; [] f = b; }
                f();
                assert g == 1 || g == 10;
             }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn assume_on_nonbool_is_a_type_error() {
        let v = check("int g; void main() { assume g; }");
        assert!(matches!(v, Verdict::RuntimeError(kiss_exec::ExecError::TypeMismatch { .. }, _)), "{v:?}");
    }
}
