//! # kiss-seq
//!
//! Sequential program checkers — the substrate the paper delegates to
//! SLAM. KISS only needs *some* sound-and-complete assertion checker
//! for sequential programs with finite data (the problem is decidable,
//! paper refs [34, 37]); this crate provides two:
//!
//! * [`explicit::ExplicitChecker`] — whole-configuration depth-first
//!   search with visited-state hashing and resource budgets. Produces
//!   full error traces, which `kiss-core` maps back to concurrent
//!   executions.
//! * [`summary::SummaryChecker`] — a Sharir–Pnueli-style functional
//!   interprocedural engine that memoizes per-function input/output
//!   summaries (the Bebop analogue), trading trace detail for reuse
//!   across call sites.
//! * [`bfs::BfsChecker`] — breadth-first search over decision points,
//!   returning minimal-depth counterexamples (short traces are what a
//!   human debugging the concurrent program wants to read).
//!
//! Both agree on verdicts; an integration test checks this on a program
//! corpus.

pub mod bfs;
pub mod budget;
pub mod cancel;
pub mod config;
pub mod explicit;
pub mod stats;
pub mod store;
pub mod summary;
pub mod verdict;

pub use bfs::BfsChecker;
pub use budget::{BoundReason, Budget, Meter, Usage};
pub use cancel::CancelToken;
pub use explicit::ExplicitChecker;
pub use stats::EngineStats;
pub use store::{
    SegmentInterner, ShardedVisitedTable, StateCapExceeded, StateId, StoreKind, VisitedSet,
    VisitedTable, SHARD_COUNT,
};
pub use summary::SummaryChecker;
pub use verdict::{ErrorTrace, TraceStep, Verdict};
