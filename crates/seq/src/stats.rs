//! Uniform search statistics shared by all three engines.
//!
//! Historically the explicit and summary engines each defined their own
//! `Stats` struct (and the BFS engine reported nothing), which made
//! every downstream consumer engine-specific. [`EngineStats`] is the
//! union of what the engines can measure; fields an engine does not
//! track stay zero.

/// Statistics for one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions executed. All engines.
    pub steps: u64,
    /// Distinct states recorded (the summary engine counts computed
    /// summaries here, its closest analogue). All engines.
    pub states: usize,
    /// Complete paths explored — ended by return-from-main, prune, or
    /// revisit. Explicit engine only.
    pub paths: u64,
    /// Distinct `(function, entry-state)` summaries computed. Summary
    /// engine only.
    pub summaries: usize,
    /// Fixpoint rounds taken. Summary engine only.
    pub rounds: u32,
    /// Peak size of the pending set (DFS stack / BFS queue). Explicit
    /// and BFS engines.
    pub frontier_peak: usize,
    /// Entries held by the state store at the end of the run (visited
    /// fingerprints, plus interned trace segments for BFS). All
    /// engines.
    pub states_stored: usize,
    /// Bytes held by the state store: exact for the interned table,
    /// estimated for legacy storage. All engines.
    pub store_bytes: usize,
    /// Instructions actually executed, including speculative work a
    /// parallel exploration ran past the point where the serial search
    /// would have stopped (merged across workers). Equals `steps` for
    /// serial runs; the difference is the parallelism overhead.
    pub speculative_steps: u64,
    /// Distinct `(configuration, Büchi state)` product states explored.
    /// LTL product engine only.
    pub product_states: usize,
    /// States of the (negated-formula) Büchi automaton. LTL product
    /// engine only.
    pub buchi_states: usize,
}

impl EngineStats {
    /// One-line rendering for `--stats` style output.
    pub fn render(&self) -> String {
        let mut line = format!(
            "steps={} states={} paths={} frontier-peak={} stored={} store-bytes={}",
            self.steps, self.states, self.paths, self.frontier_peak,
            self.states_stored, self.store_bytes
        );
        if self.summaries > 0 || self.rounds > 0 {
            line.push_str(&format!(" summaries={} rounds={}", self.summaries, self.rounds));
        }
        if self.speculative_steps > self.steps {
            line.push_str(&format!(" speculative-steps={}", self.speculative_steps));
        }
        if self.product_states > 0 {
            line.push_str(&format!(
                " product-states={} buchi-states={}",
                self.product_states, self.buchi_states
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_summary_fields_only_when_present() {
        let explicit = EngineStats { steps: 10, states: 4, paths: 2, frontier_peak: 3, ..EngineStats::default() };
        let line = explicit.render();
        assert!(line.contains("steps=10") && line.contains("frontier-peak=3"), "{line}");
        assert!(line.contains("stored=0") && line.contains("store-bytes=0"), "{line}");
        assert!(!line.contains("summaries"), "{line}");

        let summary = EngineStats { steps: 10, states: 4, summaries: 4, rounds: 2, ..EngineStats::default() };
        assert!(summary.render().contains("summaries=4 rounds=2"));
    }

    #[test]
    fn render_shows_product_fields_only_for_ltl_runs() {
        let safety = EngineStats { steps: 10, ..EngineStats::default() };
        assert!(!safety.render().contains("product-states"), "{}", safety.render());
        let ltl = EngineStats {
            steps: 10,
            product_states: 7,
            buchi_states: 3,
            ..EngineStats::default()
        };
        assert!(ltl.render().contains("product-states=7 buchi-states=3"), "{}", ltl.render());
    }

    #[test]
    fn render_shows_speculation_only_when_it_exceeds_committed_steps() {
        let serial = EngineStats { steps: 10, speculative_steps: 10, ..EngineStats::default() };
        assert!(!serial.render().contains("speculative"), "{}", serial.render());
        let parallel = EngineStats { steps: 10, speculative_steps: 14, ..EngineStats::default() };
        assert!(parallel.render().contains("speculative-steps=14"), "{}", parallel.render());
    }
}
