//! The state store: interned visited table, trace-segment interner,
//! and the storage-mode knob shared by the sequential engines.
//!
//! Explicit-state search lives or dies on its per-state bookkeeping
//! (paper §6 bounds every check at 20 min / 800 MB). The historical
//! storage — `HashSet<(u64, u64)>` for visited states and an owned
//! `Vec<TraceStep>` clone per BFS parent edge — re-hashes every
//! 128-bit fingerprint through SipHash on insert and duplicates the
//! same `schedule()` preamble segments thousands of times. This module
//! replaces both:
//!
//! * [`VisitedTable`] — open addressing keyed *directly* on the
//!   fingerprint (it is already avalanche-mixed, so the low bits are
//!   the slot index) which hands out dense [`StateId`]s in insertion
//!   order, giving the engines array-indexed parent maps for free;
//! * [`SegmentInterner`] — a flat [`TraceStep`] arena with hash-dedup,
//!   so a repeated segment costs one slice compare instead of a clone;
//! * [`StoreKind`] — the `--store legacy|cow` knob that keeps the old
//!   storage reachable for the equivalence suite.

use crate::verdict::TraceStep;

/// Which state-storage implementation an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Historical storage: `HashSet` visited sets and per-edge owned
    /// trace clones. Kept as the equivalence oracle.
    Legacy,
    /// The store in this module: interned visited table, `StateId`
    /// arenas, interned trace segments (the default).
    #[default]
    Cow,
}

impl StoreKind {
    /// Parses the `--store` flag value.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "legacy" => Some(StoreKind::Legacy),
            "cow" => Some(StoreKind::Cow),
            _ => None,
        }
    }

    /// The flag spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Legacy => "legacy",
            StoreKind::Cow => "cow",
        }
    }
}

/// A dense index into a [`VisitedTable`], assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(pub u32);

/// An open-addressing visited table keyed on 128-bit fingerprints.
///
/// Fingerprints arrive fully mixed (two multiply-rotate lanes with a
/// splitmix64 finalizer), so the table uses their low bits as the probe
/// start directly — no second hash pass, unlike `HashSet<(u64, u64)>`
/// which SipHashes the 16 bytes on every insert and probe. Slots hold
/// 1-based indices into a dense fingerprint array, so iteration order,
/// [`StateId`] assignment, and the bytes gauge are all exact.
pub struct VisitedTable {
    /// 1-based indices into `fps`; 0 marks an empty slot.
    slots: Box<[u32]>,
    /// Fingerprints in insertion order; `StateId(i)` names `fps[i]`.
    fps: Vec<(u64, u64)>,
}

/// Initial slot count; must be a power of two.
const INITIAL_SLOTS: usize = 64;

impl VisitedTable {
    /// An empty table.
    pub fn new() -> VisitedTable {
        VisitedTable { slots: vec![0u32; INITIAL_SLOTS].into_boxed_slice(), fps: Vec::new() }
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// Inserts `fp`, returning its [`StateId`] and whether it was new.
    /// Ids are dense and assigned in first-seen order.
    pub fn insert(&mut self, fp: (u64, u64)) -> (StateId, bool) {
        if (self.fps.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = (fp.0 ^ fp.1) as usize & mask;
        loop {
            match self.slots[idx] {
                0 => {
                    self.fps.push(fp);
                    self.slots[idx] = self.fps.len() as u32;
                    return (StateId((self.fps.len() - 1) as u32), true);
                }
                slot => {
                    let id = slot - 1;
                    if self.fps[id as usize] == fp {
                        return (StateId(id), false);
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Whether `fp` has been inserted.
    pub fn contains(&self, fp: (u64, u64)) -> bool {
        let mask = self.slots.len() - 1;
        let mut idx = (fp.0 ^ fp.1) as usize & mask;
        loop {
            match self.slots[idx] {
                0 => return false,
                slot => {
                    if self.fps[(slot - 1) as usize] == fp {
                        return true;
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Exact bytes held by the table's backing storage.
    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
            + self.fps.capacity() * std::mem::size_of::<(u64, u64)>()
    }

    /// Doubles the slot array and re-probes every stored fingerprint.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len].into_boxed_slice();
        let mask = new_len - 1;
        for (i, fp) in self.fps.iter().enumerate() {
            let mut idx = (fp.0 ^ fp.1) as usize & mask;
            while slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            slots[idx] = (i + 1) as u32;
        }
        self.slots = slots;
    }
}

impl Default for VisitedTable {
    fn default() -> Self {
        VisitedTable::new()
    }
}

/// A visited set behind the [`StoreKind`] knob: the legacy `HashSet`
/// or the interned [`VisitedTable`]. Both engines that only need
/// membership (explicit DFS, summary bodies) use this; BFS talks to
/// the table directly for its dense ids.
pub enum VisitedSet {
    /// `HashSet<(u64, u64)>`, as the engines historically kept it.
    Legacy(std::collections::HashSet<(u64, u64)>),
    /// The open-addressing table.
    Table(VisitedTable),
}

impl VisitedSet {
    /// An empty set of the given kind.
    pub fn new(kind: StoreKind) -> VisitedSet {
        match kind {
            StoreKind::Legacy => VisitedSet::Legacy(std::collections::HashSet::new()),
            StoreKind::Cow => VisitedSet::Table(VisitedTable::new()),
        }
    }

    /// Inserts `fp`; true when it was not yet present.
    pub fn insert(&mut self, fp: (u64, u64)) -> bool {
        match self {
            VisitedSet::Legacy(set) => set.insert(fp),
            VisitedSet::Table(table) => table.insert(fp).1,
        }
    }

    /// Number of distinct fingerprints.
    pub fn len(&self) -> usize {
        match self {
            VisitedSet::Legacy(set) => set.len(),
            VisitedSet::Table(table) => table.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held: exact for the table, the historical
    /// bytes-per-fingerprint estimate for the legacy set.
    pub fn bytes(&self) -> usize {
        match self {
            VisitedSet::Legacy(set) => set.len() * crate::budget::BYTES_PER_FINGERPRINT,
            VisitedSet::Table(table) => table.bytes(),
        }
    }
}

/// A handle to an interned trace segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegId(u32);

impl SegId {
    /// The empty segment, pre-interned in every interner.
    pub const EMPTY: SegId = SegId(0);
}

/// Interns `&[TraceStep]` segments into one flat arena.
///
/// BFS discovers parent edges in segment-sized chunks, and the chunks
/// repeat heavily: every path through a driver harness replays the same
/// `schedule()` preamble, so the historical per-edge `Vec<TraceStep>`
/// clone stored the same steps once per *edge* instead of once per
/// *segment*. Interning stores each distinct segment once; an edge is
/// then a 4-byte [`SegId`].
pub struct SegmentInterner {
    /// All interned steps, segment after segment.
    steps: Vec<TraceStep>,
    /// `(start, len)` into `steps`, indexed by `SegId`.
    spans: Vec<(u32, u32)>,
    /// Content hash per span, kept so `grow` re-probes without
    /// re-hashing segment contents.
    hashes: Vec<u64>,
    /// Open-addressing index: 1-based `SegId`s keyed on the content
    /// hash, 0 marks an empty slot (the empty segment is never probed).
    slots: Box<[u32]>,
}

impl SegmentInterner {
    /// An empty interner holding only [`SegId::EMPTY`].
    pub fn new() -> SegmentInterner {
        SegmentInterner {
            steps: Vec::new(),
            spans: vec![(0, 0)],
            hashes: vec![0],
            slots: vec![0u32; INITIAL_SLOTS].into_boxed_slice(),
        }
    }

    /// Number of distinct segments (including the empty one).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether only the empty segment is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.len() == 1
    }

    /// Interns `segment`, returning the id of an existing identical
    /// segment when one is already stored.
    pub fn intern(&mut self, segment: &[TraceStep]) -> SegId {
        if segment.is_empty() {
            return SegId::EMPTY;
        }
        if self.spans.len() * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let hash = Self::hash_segment(segment);
        let mask = self.slots.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            match self.slots[idx] {
                0 => {
                    let start = self.steps.len() as u32;
                    self.steps.extend_from_slice(segment);
                    let id = self.spans.len() as u32;
                    self.spans.push((start, segment.len() as u32));
                    self.hashes.push(hash);
                    self.slots[idx] = id;
                    return SegId(id);
                }
                slot => {
                    if self.hashes[slot as usize] == hash && self.get(SegId(slot)) == segment {
                        return SegId(slot);
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Doubles the slot array and re-probes every interned segment.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len].into_boxed_slice();
        let mask = new_len - 1;
        for (id, &hash) in self.hashes.iter().enumerate().skip(1) {
            let mut idx = hash as usize & mask;
            while slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            slots[idx] = id as u32;
        }
        self.slots = slots;
    }

    /// The steps of an interned segment.
    pub fn get(&self, id: SegId) -> &[TraceStep] {
        let (start, len) = self.spans[id.0 as usize];
        &self.steps[start as usize..(start + len) as usize]
    }

    /// Exact bytes held by the arena and its index.
    pub fn bytes(&self) -> usize {
        self.steps.capacity() * std::mem::size_of::<TraceStep>()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.slots.len() * std::mem::size_of::<u32>()
    }

    /// A cheap content hash: (func, pc) per step under an FNV-style
    /// fold. Collisions only cost an extra slice compare.
    fn hash_segment(segment: &[TraceStep]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for step in segment {
            h = (h ^ u64::from(step.func.0)).wrapping_mul(0x0000_0100_0000_01B3);
            h = (h ^ step.pc as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl Default for SegmentInterner {
    fn default() -> Self {
        SegmentInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::hir::{FuncId, Origin};
    use kiss_lang::Span;

    #[test]
    fn visited_table_inserts_dedups_and_survives_growth() {
        let mut t = VisitedTable::new();
        assert!(t.is_empty());
        // Enough entries to force several grow() rebuilds, with
        // adversarially similar fingerprints (sequential low bits).
        for i in 0..5000u64 {
            let (id, new) = t.insert((i, i.rotate_left(17)));
            assert!(new, "fp {i} reported as seen on first insert");
            assert_eq!(id, StateId(i as u32), "ids must be dense, in insertion order");
        }
        assert_eq!(t.len(), 5000);
        for i in 0..5000u64 {
            let fp = (i, i.rotate_left(17));
            assert!(t.contains(fp));
            let (id, new) = t.insert(fp);
            assert!(!new);
            assert_eq!(id, StateId(i as u32), "re-insert must return the original id");
        }
        assert_eq!(t.len(), 5000);
        assert!(!t.contains((9999, 1)));
        assert!(t.bytes() >= 5000 * 16);
    }

    #[test]
    fn visited_set_modes_agree_on_membership() {
        let fps: Vec<(u64, u64)> = (0..100).map(|i| (i * 3, i * 7 + 1)).collect();
        let mut legacy = VisitedSet::new(StoreKind::Legacy);
        let mut cow = VisitedSet::new(StoreKind::Cow);
        for &fp in &fps {
            assert_eq!(legacy.insert(fp), cow.insert(fp));
        }
        for &fp in &fps {
            assert!(!legacy.insert(fp));
            assert!(!cow.insert(fp));
        }
        assert_eq!(legacy.len(), cow.len());
        assert!(legacy.bytes() > 0 && cow.bytes() > 0);
    }

    fn step(func: u32, pc: usize) -> TraceStep {
        TraceStep { func: FuncId(func), pc, origin: Origin::User, span: Span::default() }
    }

    #[test]
    fn interner_dedups_repeated_segments() {
        let mut i = SegmentInterner::new();
        assert!(i.is_empty());
        let preamble: Vec<TraceStep> = (0..10).map(|pc| step(0, pc)).collect();
        let other: Vec<TraceStep> = (0..10).map(|pc| step(1, pc)).collect();

        let a = i.intern(&preamble);
        let b = i.intern(&other);
        assert_ne!(a, b);
        let arena_after_two = i.bytes();
        // The repeated preamble — the `schedule()` pattern — must not
        // grow the arena, and must return the original id.
        for _ in 0..100 {
            assert_eq!(i.intern(&preamble), a);
            assert_eq!(i.intern(&other), b);
        }
        assert_eq!(i.len(), 3, "empty + two distinct segments");
        assert_eq!(i.bytes(), arena_after_two);
        assert_eq!(i.get(a), &preamble[..]);
        assert_eq!(i.get(b), &other[..]);
    }

    #[test]
    fn interner_separates_hash_colliding_but_unequal_segments() {
        let mut i = SegmentInterner::new();
        // Same (func, pc) content hash, different spans/origin would
        // still hash equal — here we vary pc so contents differ but
        // prefixes collide in the index buckets.
        let s1 = vec![step(0, 1), step(0, 2)];
        let s2 = vec![step(0, 1), step(0, 3)];
        let a = i.intern(&s1);
        let b = i.intern(&s2);
        assert_ne!(a, b);
        assert_eq!(i.get(a), &s1[..]);
        assert_eq!(i.get(b), &s2[..]);
    }

    #[test]
    fn empty_segment_is_preinterned() {
        let mut i = SegmentInterner::new();
        assert_eq!(i.intern(&[]), SegId::EMPTY);
        assert_eq!(i.get(SegId::EMPTY), &[] as &[TraceStep]);
    }

    #[test]
    fn store_kind_parses_its_own_names() {
        for kind in [StoreKind::Legacy, StoreKind::Cow] {
            assert_eq!(StoreKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StoreKind::parse("bitstate"), None);
        assert_eq!(StoreKind::default(), StoreKind::Cow);
    }
}
