//! The state store: interned visited table, trace-segment interner,
//! and the storage-mode knob shared by the sequential engines.
//!
//! Explicit-state search lives or dies on its per-state bookkeeping
//! (paper §6 bounds every check at 20 min / 800 MB). The historical
//! storage — `HashSet<(u64, u64)>` for visited states and an owned
//! `Vec<TraceStep>` clone per BFS parent edge — re-hashes every
//! 128-bit fingerprint through SipHash on insert and duplicates the
//! same `schedule()` preamble segments thousands of times. This module
//! replaces both:
//!
//! * [`VisitedTable`] — open addressing keyed *directly* on the
//!   fingerprint (it is already avalanche-mixed, so the low bits are
//!   the slot index) which hands out dense [`StateId`]s in insertion
//!   order, giving the engines array-indexed parent maps for free;
//! * [`SegmentInterner`] — a flat [`TraceStep`] arena with hash-dedup,
//!   so a repeated segment costs one slice compare instead of a clone;
//! * [`StoreKind`] — the `--store legacy|cow` knob that keeps the old
//!   storage reachable for the equivalence suite.

use std::sync::Mutex;

use crate::verdict::TraceStep;

/// A state store ran out of dense-id space: the table (or one shard of
/// the sharded table) cannot mint another [`StateId`] without wrapping.
/// Engines surface this as an inconclusive verdict with
/// [`crate::budget::BoundReason::StateCap`] — a silent u32 wrap would
/// alias two distinct states and unsoundly prune the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCapExceeded;

impl std::fmt::Display for StateCapExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("state store id space exhausted")
    }
}

impl std::error::Error for StateCapExceeded {}

/// Which state-storage implementation an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Historical storage: `HashSet` visited sets and per-edge owned
    /// trace clones. Kept as the equivalence oracle.
    Legacy,
    /// The store in this module: interned visited table, `StateId`
    /// arenas, interned trace segments (the default).
    #[default]
    Cow,
}

impl StoreKind {
    /// Parses the `--store` flag value.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "legacy" => Some(StoreKind::Legacy),
            "cow" => Some(StoreKind::Cow),
            _ => None,
        }
    }

    /// The flag spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Legacy => "legacy",
            StoreKind::Cow => "cow",
        }
    }
}

/// A dense index into a [`VisitedTable`], assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(pub u32);

/// An open-addressing visited table keyed on 128-bit fingerprints.
///
/// Fingerprints arrive fully mixed (two multiply-rotate lanes with a
/// splitmix64 finalizer), so the table uses their low bits as the probe
/// start directly — no second hash pass, unlike `HashSet<(u64, u64)>`
/// which SipHashes the 16 bytes on every insert and probe. Slots hold
/// 1-based indices into a dense fingerprint array, so iteration order,
/// [`StateId`] assignment, and the bytes gauge are all exact.
pub struct VisitedTable {
    /// 1-based indices into `fps`; 0 marks an empty slot.
    slots: Box<[u32]>,
    /// Fingerprints in insertion order; `StateId(i)` names `fps[i]`.
    fps: Vec<(u64, u64)>,
    /// Most fingerprints the table may hold before `insert` reports
    /// [`StateCapExceeded`]. Defaults to the id space itself; tests and
    /// sharded tables (whose locals share the 32-bit id with a shard
    /// tag) inject smaller caps.
    cap: u32,
}

/// Initial slot count; must be a power of two.
const INITIAL_SLOTS: usize = 64;

/// The most entries one table can hold: slot values are 1-based u32
/// indices, so `len + 1` must not wrap.
const TABLE_CAP: u32 = u32::MAX - 1;

impl VisitedTable {
    /// An empty table.
    pub fn new() -> VisitedTable {
        VisitedTable {
            slots: vec![0u32; INITIAL_SLOTS].into_boxed_slice(),
            fps: Vec::new(),
            cap: TABLE_CAP,
        }
    }

    /// Lowers the id-space cap (it can never exceed the structural
    /// 32-bit limit). Exposed so the cap path is testable without
    /// inserting four billion states.
    pub fn with_capacity_limit(mut self, cap: u32) -> VisitedTable {
        self.cap = cap.min(TABLE_CAP);
        self
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// Inserts `fp`, returning its [`StateId`] and whether it was new.
    /// Ids are dense and assigned in first-seen order. Fails — without
    /// storing anything — when a genuinely new fingerprint would
    /// exceed the id space.
    pub fn insert(&mut self, fp: (u64, u64)) -> Result<(StateId, bool), StateCapExceeded> {
        if (self.fps.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = (fp.0 ^ fp.1) as usize & mask;
        loop {
            match self.slots[idx] {
                0 => {
                    if self.fps.len() as u32 >= self.cap {
                        return Err(StateCapExceeded);
                    }
                    self.fps.push(fp);
                    self.slots[idx] = self.fps.len() as u32;
                    return Ok((StateId((self.fps.len() - 1) as u32), true));
                }
                slot => {
                    let id = slot - 1;
                    if self.fps[id as usize] == fp {
                        return Ok((StateId(id), false));
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Whether `fp` has been inserted.
    pub fn contains(&self, fp: (u64, u64)) -> bool {
        let mask = self.slots.len() - 1;
        let mut idx = (fp.0 ^ fp.1) as usize & mask;
        loop {
            match self.slots[idx] {
                0 => return false,
                slot => {
                    if self.fps[(slot - 1) as usize] == fp {
                        return true;
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Exact bytes held by the table's backing storage.
    pub fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
            + self.fps.capacity() * std::mem::size_of::<(u64, u64)>()
    }

    /// Doubles the slot array and re-probes every stored fingerprint.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len].into_boxed_slice();
        let mask = new_len - 1;
        for (i, fp) in self.fps.iter().enumerate() {
            let mut idx = (fp.0 ^ fp.1) as usize & mask;
            while slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            slots[idx] = (i + 1) as u32;
        }
        self.slots = slots;
    }
}

impl Default for VisitedTable {
    fn default() -> Self {
        VisitedTable::new()
    }
}

/// Shard-index width of the sharded table: 16 shards, selected by the
/// fingerprint's high bits (the probe sequence inside a shard uses the
/// low bits, so the two never correlate).
pub const SHARD_BITS: u32 = 4;
/// Number of shards in a [`ShardedVisitedTable`].
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;
/// Bits of a [`StateId`] left for the within-shard local index.
const LOCAL_BITS: u32 = 32 - SHARD_BITS;
/// The largest within-shard local index.
const LOCAL_MASK: u32 = (1 << LOCAL_BITS) - 1;

impl StateId {
    /// Packs a (shard, local) pair into the id's bit layout.
    fn from_shard_local(shard: usize, local: u32) -> StateId {
        StateId((shard as u32) << LOCAL_BITS | local)
    }

    /// The shard index of a sharded id.
    fn shard(self) -> usize {
        (self.0 >> LOCAL_BITS) as usize
    }

    /// The within-shard local index of a sharded id.
    fn local(self) -> u32 {
        self.0 & LOCAL_MASK
    }
}

/// One stripe of a [`ShardedVisitedTable`]: an ordinary open-addressed
/// [`VisitedTable`] handing out *local* ids, plus the per-layer claim
/// and parked-payload books the deterministic commit walk reads.
struct Shard<C> {
    table: VisitedTable,
    /// Parent edge per local id; a fresh entry is its own parent until
    /// the commit walk sets the real edge.
    parents: Vec<(StateId, SegId)>,
    /// Locals below this are prior-layer states — revisits, never
    /// claimable in the current layer.
    sealed: u32,
    /// Minimal `(rank, tidx)` claim per current-layer local, indexed by
    /// `local - sealed`.
    claims: Vec<(u32, u32)>,
    /// Parked payload (the discoverer's cloned configuration) per
    /// current-layer local, indexed by `local - sealed`.
    parked: Vec<Option<C>>,
}

/// A [`VisitedTable`] striped into [`SHARD_COUNT`] independently locked
/// partitions, for concurrent insertion from BFS workers.
///
/// The fingerprint's high bits pick the shard, so membership and the
/// set of stored states are identical to a single-shard table no matter
/// how many threads insert, or in what order. Dense [`StateId`]s are
/// allocated *per shard* and tagged with the shard index in their high
/// bits — ids differ from the serial table's, but ids never surface in
/// any observable (verdicts, traces, counts); only membership and
/// parent edges do.
///
/// Determinism across thread interleavings is the point of the claim
/// machinery: every insert carries the inserting node's `(rank, tidx)`
/// — its position in the layer's canonical order — and claims on the
/// same new state min-merge, so the commit walk can ask "which insert
/// would a serial run have seen first?" and get the same answer on
/// every run. `seal` ends a layer: its entries become prior-layer
/// states and the claim books reset.
pub struct ShardedVisitedTable<C> {
    shards: Box<[Mutex<Shard<C>>]>,
}

impl<C> ShardedVisitedTable<C> {
    /// An empty table.
    pub fn new() -> ShardedVisitedTable<C> {
        ShardedVisitedTable::with_shard_capacity(LOCAL_MASK)
    }

    /// An empty table whose shards hold at most `cap` entries each —
    /// the cap path is testable without exhausting a 28-bit id space.
    pub fn with_shard_capacity(cap: u32) -> ShardedVisitedTable<C> {
        let shards = (0..SHARD_COUNT)
            .map(|_| {
                Mutex::new(Shard {
                    table: VisitedTable::new().with_capacity_limit(cap.min(LOCAL_MASK)),
                    parents: Vec::new(),
                    sealed: 0,
                    claims: Vec::new(),
                    parked: Vec::new(),
                })
            })
            .collect();
        ShardedVisitedTable { shards }
    }

    fn shard_of(fp: (u64, u64)) -> usize {
        (fp.0 >> (64 - SHARD_BITS)) as usize
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard<C>> {
        self.shards[shard].lock().expect("shard lock")
    }

    /// Inserts `fp` on behalf of the layer node at `rank`, target
    /// `tidx`. Returns the state's id and whether this call created the
    /// entry (the creator is responsible for [`Self::park`]ing a
    /// payload). Claims on a current-layer entry min-merge, so the
    /// minimal claim — the one a serial run would have seen first — is
    /// what [`Self::claim_of`] later reports regardless of insertion
    /// order.
    pub fn insert_claimed(
        &self,
        fp: (u64, u64),
        rank: u32,
        tidx: u32,
    ) -> Result<(StateId, bool), StateCapExceeded> {
        let shard_idx = Self::shard_of(fp);
        let mut shard = self.lock(shard_idx);
        let (local_id, new) = shard.table.insert(fp)?;
        let id = StateId::from_shard_local(shard_idx, local_id.0);
        if new {
            debug_assert_eq!(local_id.0 as usize, shard.parents.len());
            shard.parents.push((id, SegId::EMPTY));
            shard.claims.push((rank, tidx));
            shard.parked.push(None);
        } else if local_id.0 >= shard.sealed {
            let at = (local_id.0 - shard.sealed) as usize;
            shard.claims[at] = shard.claims[at].min((rank, tidx));
        }
        Ok((id, new))
    }

    /// Parks the payload for an entry this caller created. Any
    /// claimant's payload is state-equivalent (equal fingerprints mean
    /// equal states), so the creator's clone serves whichever claim
    /// wins.
    pub fn park(&self, id: StateId, payload: C) {
        let mut shard = self.lock(id.shard());
        let at = (id.local() - shard.sealed) as usize;
        shard.parked[at] = Some(payload);
    }

    /// The minimal claim recorded for `id` in the current layer, or
    /// `None` when the entry predates it (a revisit).
    pub fn claim_of(&self, id: StateId) -> Option<(u32, u32)> {
        let shard = self.lock(id.shard());
        let local = id.local();
        (local >= shard.sealed).then(|| shard.claims[(local - shard.sealed) as usize])
    }

    /// Takes the parked payload of a winning entry.
    pub fn take_parked(&self, id: StateId) -> Option<C> {
        let mut shard = self.lock(id.shard());
        let at = (id.local() - shard.sealed) as usize;
        shard.parked[at].take()
    }

    /// Sets the parent edge the trace reconstruction walks.
    pub fn set_parent(&self, id: StateId, parent: StateId, seg: SegId) {
        let mut shard = self.lock(id.shard());
        let local = id.local() as usize;
        shard.parents[local] = (parent, seg);
    }

    /// The parent edge of `id` (an uncommitted entry is its own
    /// parent).
    pub fn parent(&self, id: StateId) -> (StateId, SegId) {
        self.lock(id.shard()).parents[id.local() as usize]
    }

    /// Ends the current layer: its entries become prior-layer states,
    /// claims reset, and parked payloads that no winner consumed are
    /// dropped.
    pub fn seal(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("shard lock");
            shard.sealed = shard.table.len() as u32;
            shard.claims.clear();
            shard.parked.clear();
        }
    }

    /// Total distinct fingerprints across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("shard lock").table.len()).sum()
    }

    /// Whether no fingerprint has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `fp` has been inserted (any layer).
    pub fn contains(&self, fp: (u64, u64)) -> bool {
        self.lock(Self::shard_of(fp)).table.contains(fp)
    }

    /// Exact bytes held by all shards' tables and parent arenas.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("shard lock");
                s.table.bytes()
                    + s.parents.capacity() * std::mem::size_of::<(StateId, SegId)>()
            })
            .sum()
    }
}

impl<C> Default for ShardedVisitedTable<C> {
    fn default() -> Self {
        ShardedVisitedTable::new()
    }
}

/// A visited set behind the [`StoreKind`] knob: the legacy `HashSet`
/// or the interned [`VisitedTable`]. Both engines that only need
/// membership (explicit DFS, summary bodies) use this; BFS talks to
/// the table directly for its dense ids.
pub enum VisitedSet {
    /// `HashSet<(u64, u64)>`, as the engines historically kept it.
    Legacy(std::collections::HashSet<(u64, u64)>),
    /// The open-addressing table.
    Table(VisitedTable),
}

impl VisitedSet {
    /// An empty set of the given kind.
    pub fn new(kind: StoreKind) -> VisitedSet {
        match kind {
            StoreKind::Legacy => VisitedSet::Legacy(std::collections::HashSet::new()),
            StoreKind::Cow => VisitedSet::Table(VisitedTable::new()),
        }
    }

    /// Inserts `fp`; true when it was not yet present. The legacy set
    /// has no dense ids and so no cap; the table reports
    /// [`StateCapExceeded`] when its id space runs out.
    pub fn insert(&mut self, fp: (u64, u64)) -> Result<bool, StateCapExceeded> {
        match self {
            VisitedSet::Legacy(set) => Ok(set.insert(fp)),
            VisitedSet::Table(table) => Ok(table.insert(fp)?.1),
        }
    }

    /// Number of distinct fingerprints.
    pub fn len(&self) -> usize {
        match self {
            VisitedSet::Legacy(set) => set.len(),
            VisitedSet::Table(table) => table.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held: exact for the table, the historical
    /// bytes-per-fingerprint estimate for the legacy set.
    pub fn bytes(&self) -> usize {
        match self {
            VisitedSet::Legacy(set) => set.len() * crate::budget::BYTES_PER_FINGERPRINT,
            VisitedSet::Table(table) => table.bytes(),
        }
    }
}

/// A handle to an interned trace segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegId(u32);

impl SegId {
    /// The empty segment, pre-interned in every interner.
    pub const EMPTY: SegId = SegId(0);
}

/// Interns `&[TraceStep]` segments into one flat arena.
///
/// BFS discovers parent edges in segment-sized chunks, and the chunks
/// repeat heavily: every path through a driver harness replays the same
/// `schedule()` preamble, so the historical per-edge `Vec<TraceStep>`
/// clone stored the same steps once per *edge* instead of once per
/// *segment*. Interning stores each distinct segment once; an edge is
/// then a 4-byte [`SegId`].
pub struct SegmentInterner {
    /// All interned steps, segment after segment.
    steps: Vec<TraceStep>,
    /// `(start, len)` into `steps`, indexed by `SegId`.
    spans: Vec<(u32, u32)>,
    /// Content hash per span, kept so `grow` re-probes without
    /// re-hashing segment contents.
    hashes: Vec<u64>,
    /// Open-addressing index: 1-based `SegId`s keyed on the content
    /// hash, 0 marks an empty slot (the empty segment is never probed).
    slots: Box<[u32]>,
}

impl SegmentInterner {
    /// An empty interner holding only [`SegId::EMPTY`].
    pub fn new() -> SegmentInterner {
        SegmentInterner {
            steps: Vec::new(),
            spans: vec![(0, 0)],
            hashes: vec![0],
            slots: vec![0u32; INITIAL_SLOTS].into_boxed_slice(),
        }
    }

    /// Number of distinct segments (including the empty one).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether only the empty segment is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.len() == 1
    }

    /// Interns `segment`, returning the id of an existing identical
    /// segment when one is already stored.
    pub fn intern(&mut self, segment: &[TraceStep]) -> SegId {
        if segment.is_empty() {
            return SegId::EMPTY;
        }
        if self.spans.len() * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let hash = Self::hash_segment(segment);
        let mask = self.slots.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            match self.slots[idx] {
                0 => {
                    let start = self.steps.len() as u32;
                    self.steps.extend_from_slice(segment);
                    let id = self.spans.len() as u32;
                    self.spans.push((start, segment.len() as u32));
                    self.hashes.push(hash);
                    self.slots[idx] = id;
                    return SegId(id);
                }
                slot => {
                    if self.hashes[slot as usize] == hash && self.get(SegId(slot)) == segment {
                        return SegId(slot);
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Doubles the slot array and re-probes every interned segment.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mut slots = vec![0u32; new_len].into_boxed_slice();
        let mask = new_len - 1;
        for (id, &hash) in self.hashes.iter().enumerate().skip(1) {
            let mut idx = hash as usize & mask;
            while slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            slots[idx] = id as u32;
        }
        self.slots = slots;
    }

    /// The steps of an interned segment.
    pub fn get(&self, id: SegId) -> &[TraceStep] {
        let (start, len) = self.spans[id.0 as usize];
        &self.steps[start as usize..(start + len) as usize]
    }

    /// Exact bytes held by the arena and its index.
    pub fn bytes(&self) -> usize {
        self.steps.capacity() * std::mem::size_of::<TraceStep>()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.slots.len() * std::mem::size_of::<u32>()
    }

    /// A cheap content hash: (func, pc) per step under an FNV-style
    /// fold. Collisions only cost an extra slice compare.
    fn hash_segment(segment: &[TraceStep]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for step in segment {
            h = (h ^ u64::from(step.func.0)).wrapping_mul(0x0000_0100_0000_01B3);
            h = (h ^ step.pc as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl Default for SegmentInterner {
    fn default() -> Self {
        SegmentInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiss_lang::hir::{FuncId, Origin};
    use kiss_lang::Span;

    #[test]
    fn visited_table_inserts_dedups_and_survives_growth() {
        let mut t = VisitedTable::new();
        assert!(t.is_empty());
        // Enough entries to force several grow() rebuilds, with
        // adversarially similar fingerprints (sequential low bits).
        for i in 0..5000u64 {
            let (id, new) = t.insert((i, i.rotate_left(17))).unwrap();
            assert!(new, "fp {i} reported as seen on first insert");
            assert_eq!(id, StateId(i as u32), "ids must be dense, in insertion order");
        }
        assert_eq!(t.len(), 5000);
        for i in 0..5000u64 {
            let fp = (i, i.rotate_left(17));
            assert!(t.contains(fp));
            let (id, new) = t.insert(fp).unwrap();
            assert!(!new);
            assert_eq!(id, StateId(i as u32), "re-insert must return the original id");
        }
        assert_eq!(t.len(), 5000);
        assert!(!t.contains((9999, 1)));
        assert!(t.bytes() >= 5000 * 16);
    }

    #[test]
    fn visited_set_modes_agree_on_membership() {
        let fps: Vec<(u64, u64)> = (0..100).map(|i| (i * 3, i * 7 + 1)).collect();
        let mut legacy = VisitedSet::new(StoreKind::Legacy);
        let mut cow = VisitedSet::new(StoreKind::Cow);
        for &fp in &fps {
            assert_eq!(legacy.insert(fp).unwrap(), cow.insert(fp).unwrap());
        }
        for &fp in &fps {
            assert!(!legacy.insert(fp).unwrap());
            assert!(!cow.insert(fp).unwrap());
        }
        assert_eq!(legacy.len(), cow.len());
        assert!(legacy.bytes() > 0 && cow.bytes() > 0);
    }

    fn step(func: u32, pc: usize) -> TraceStep {
        TraceStep { func: FuncId(func), pc, origin: Origin::User, span: Span::default() }
    }

    #[test]
    fn interner_dedups_repeated_segments() {
        let mut i = SegmentInterner::new();
        assert!(i.is_empty());
        let preamble: Vec<TraceStep> = (0..10).map(|pc| step(0, pc)).collect();
        let other: Vec<TraceStep> = (0..10).map(|pc| step(1, pc)).collect();

        let a = i.intern(&preamble);
        let b = i.intern(&other);
        assert_ne!(a, b);
        let arena_after_two = i.bytes();
        // The repeated preamble — the `schedule()` pattern — must not
        // grow the arena, and must return the original id.
        for _ in 0..100 {
            assert_eq!(i.intern(&preamble), a);
            assert_eq!(i.intern(&other), b);
        }
        assert_eq!(i.len(), 3, "empty + two distinct segments");
        assert_eq!(i.bytes(), arena_after_two);
        assert_eq!(i.get(a), &preamble[..]);
        assert_eq!(i.get(b), &other[..]);
    }

    #[test]
    fn interner_separates_hash_colliding_but_unequal_segments() {
        let mut i = SegmentInterner::new();
        // Same (func, pc) content hash, different spans/origin would
        // still hash equal — here we vary pc so contents differ but
        // prefixes collide in the index buckets.
        let s1 = vec![step(0, 1), step(0, 2)];
        let s2 = vec![step(0, 1), step(0, 3)];
        let a = i.intern(&s1);
        let b = i.intern(&s2);
        assert_ne!(a, b);
        assert_eq!(i.get(a), &s1[..]);
        assert_eq!(i.get(b), &s2[..]);
    }

    #[test]
    fn empty_segment_is_preinterned() {
        let mut i = SegmentInterner::new();
        assert_eq!(i.intern(&[]), SegId::EMPTY);
        assert_eq!(i.get(SegId::EMPTY), &[] as &[TraceStep]);
    }

    #[test]
    fn table_reports_state_cap_instead_of_wrapping() {
        let mut t = VisitedTable::new().with_capacity_limit(3);
        for i in 0..3u64 {
            assert!(t.insert((i, i + 100)).unwrap().1);
        }
        // Re-inserting a known fingerprint still works at the cap…
        assert_eq!(t.insert((1, 101)).unwrap(), (StateId(1), false));
        // …but a genuinely new one is a typed error, and nothing is
        // stored.
        assert_eq!(t.insert((9, 109)), Err(StateCapExceeded));
        assert_eq!(t.len(), 3);
        assert!(!t.contains((9, 109)));
    }

    #[test]
    fn sharded_table_matches_single_shard_membership_and_ids() {
        let sharded: ShardedVisitedTable<()> = ShardedVisitedTable::new();
        let mut single = VisitedTable::new();
        // Fingerprints spread across shards (high bits vary).
        let fps: Vec<(u64, u64)> =
            (0..2000u64).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i)).collect();
        let mut ids = std::collections::HashMap::new();
        for (i, &fp) in fps.iter().enumerate() {
            let (sid, snew) = sharded.insert_claimed(fp, i as u32, 0).unwrap();
            let (_, lnew) = single.insert(fp).unwrap();
            assert_eq!(snew, lnew, "newness diverges on {fp:?}");
            ids.insert(fp, sid);
        }
        assert_eq!(sharded.len(), single.len());
        for &fp in &fps {
            assert!(sharded.contains(fp));
            // Id stability: a re-insert returns the original id.
            let (sid, snew) = sharded.insert_claimed(fp, u32::MAX, u32::MAX).unwrap();
            assert!(!snew);
            assert_eq!(sid, ids[&fp]);
        }
        assert!(!sharded.contains((u64::MAX, u64::MAX)));
    }

    #[test]
    fn sharded_claims_min_merge_and_reset_on_seal() {
        let t: ShardedVisitedTable<u32> = ShardedVisitedTable::new();
        let fp = (42, 43);
        let (id, first) = t.insert_claimed(fp, 7, 1).unwrap();
        assert!(first);
        t.park(id, 99);
        // A later claim with a smaller rank wins; a larger one loses;
        // tidx breaks rank ties.
        assert!(!t.insert_claimed(fp, 9, 0).unwrap().1);
        assert_eq!(t.claim_of(id), Some((7, 1)));
        assert!(!t.insert_claimed(fp, 7, 0).unwrap().1);
        assert_eq!(t.claim_of(id), Some((7, 0)));
        assert!(!t.insert_claimed(fp, 3, 5).unwrap().1);
        assert_eq!(t.claim_of(id), Some((3, 5)));
        assert_eq!(t.take_parked(id), Some(99));
        assert_eq!(t.take_parked(id), None);
        // Sealing turns the entry into a prior-layer state: no claim,
        // and a next-layer insert is a plain revisit.
        t.seal();
        assert_eq!(t.claim_of(id), None);
        let (again, new) = t.insert_claimed(fp, 0, 0).unwrap();
        assert!(!new);
        assert_eq!(again, id);
        assert_eq!(t.claim_of(id), None);
    }

    #[test]
    fn sharded_parent_edges_default_to_self_until_committed() {
        let t: ShardedVisitedTable<()> = ShardedVisitedTable::new();
        let (root, _) = t.insert_claimed((1, 1), 0, 0).unwrap();
        let (child, _) = t.insert_claimed((2, 2), 0, 1).unwrap();
        assert_eq!(t.parent(child), (child, SegId::EMPTY));
        t.set_parent(child, root, SegId::EMPTY);
        assert_eq!(t.parent(child), (root, SegId::EMPTY));
        assert_eq!(t.parent(root), (root, SegId::EMPTY));
    }

    #[test]
    fn sharded_shard_cap_reports_state_cap() {
        // Cap each shard at 2: the third fingerprint landing in one
        // shard trips. Same high bits force one shard.
        let t: ShardedVisitedTable<()> = ShardedVisitedTable::with_shard_capacity(2);
        assert!(t.insert_claimed((1, 1), 0, 0).is_ok());
        assert!(t.insert_claimed((2, 2), 0, 1).is_ok());
        assert_eq!(t.insert_claimed((3, 3), 0, 2), Err(StateCapExceeded));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sharded_table_survives_concurrent_hammering() {
        // 8 threads insert overlapping fingerprint ranges with
        // different claim ranks; the table must end up with exactly the
        // distinct set, every id stable, and every claim the minimum
        // over the inserting threads.
        let t: ShardedVisitedTable<usize> = ShardedVisitedTable::new();
        let threads = 8usize;
        let per_thread = 2_000u64;
        std::thread::scope(|s| {
            for w in 0..threads {
                let t = &t;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Every thread inserts every fp, claiming with
                        // its own rank; half the fps collide across all
                        // threads, half are thread-private.
                        let shared = (i.wrapping_mul(0xDEAD_BEEF_CAFE_F00D), i);
                        let (id, first) =
                            t.insert_claimed(shared, w as u32, 0).unwrap();
                        if first {
                            t.park(id, w);
                        }
                        let private =
                            ((w as u64) << 32 | i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        // The second lane keeps private fps disjoint
                        // from the shared ones (whose lane is < 2000).
                        t.insert_claimed((private, 1 << 40 | w as u64), w as u32, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), per_thread as usize * (1 + threads));
        for i in 0..per_thread {
            let shared = (i.wrapping_mul(0xDEAD_BEEF_CAFE_F00D), i);
            assert!(t.contains(shared));
            let (id, new) = t.insert_claimed(shared, u32::MAX, 0).unwrap();
            assert!(!new);
            // All 8 threads claimed rank w — the minimum must have won.
            assert_eq!(t.claim_of(id), Some((0, 0)), "claim on fp {i}");
            // Exactly one thread parked a payload.
            assert!(t.take_parked(id).is_some(), "no parked payload for fp {i}");
        }
    }

    #[test]
    fn store_kind_parses_its_own_names() {
        for kind in [StoreKind::Legacy, StoreKind::Cow] {
            assert_eq!(StoreKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StoreKind::parse("bitstate"), None);
        assert_eq!(StoreKind::default(), StoreKind::Cow);
    }
}
