//! Summary-based interprocedural checker.
//!
//! The functional approach of Sharir–Pnueli / Reps–Horwitz–Sagiv (the
//! paper's references [37, 34] for the decidability of sequential
//! checking): for each function and each *entry state* (globals, heap,
//! argument values) reached, compute the set of *exit states* (globals,
//! heap, return value) once, and reuse it at every call site. This is
//! the analogue of SLAM's Bebop engine for our explicit value domain.
//!
//! Recursive programs are handled by iterating the analysis to a
//! fixpoint: summaries only ever grow, and the domain is finite for
//! finite-state programs, so iteration terminates.
//!
//! Compared to [`crate::explicit`], this engine reports verdicts but
//! not full traces, and it does not support pointers into a *caller's*
//! stack frame (the explicit engine does).

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use kiss_exec::{eval, Addr, Env, ExecError, Instr, Memory, Module, Value};
use kiss_lang::hir::{FuncId, LocalId, VarRef};
use kiss_obs::Obs;

use crate::budget::{BoundReason, Budget, Meter};
use crate::cancel::CancelToken;
use crate::stats::EngineStats;
use crate::store::{StoreKind, VisitedSet};
use crate::verdict::{ErrorTrace, Verdict};

/// A function entry state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    func: FuncId,
    mem: Memory,
    args: Vec<Value>,
}

/// A function exit state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Exit {
    mem: Memory,
    ret: Value,
}

/// The summary-based checker.
#[derive(Debug, Clone)]
pub struct SummaryChecker<'a> {
    module: &'a Module,
    budget: Budget,
    cancel: CancelToken,
    obs: Obs,
    store: StoreKind,
}

enum Interrupt {
    Fail,
    Runtime(ExecError),
    Budget(BoundReason),
}

impl<'a> SummaryChecker<'a> {
    /// Creates a checker over a lowered module.
    pub fn new(module: &'a Module) -> Self {
        SummaryChecker {
            module,
            budget: Budget::default(),
            cancel: CancelToken::default(),
            obs: Obs::off(),
            store: StoreKind::default(),
        }
    }

    /// Selects the state-storage implementation for the per-body
    /// visited tables.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cancellation token polled from the analysis loop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches an observer; the analysis emits throttled progress and
    /// budget-violation events through it.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the check.
    pub fn check(&self) -> Verdict {
        self.check_with_stats().0
    }

    /// Runs the check, also returning statistics.
    pub fn check_with_stats(&self) -> (Verdict, EngineStats) {
        let mut engine = Engine {
            module: self.module,
            meter: Meter::new(self.budget, self.cancel.clone())
                .with_observer(self.obs.clone(), "summary"),
            summaries: HashMap::new(),
            in_progress: Vec::new(),
            store: self.store,
            stored: 0,
            store_bytes: 0,
        };
        let main_key = Key {
            func: self.module.program.main,
            mem: Memory::initial(&self.module.program),
            args: Vec::new(),
        };
        let mut rounds = 0u32;
        let verdict = loop {
            rounds += 1;
            let before: usize = engine.summaries.values().map(BTreeSet::len).sum();
            match engine.analyze(main_key.clone()) {
                Err(Interrupt::Fail) => break Verdict::Fail(ErrorTrace::default()),
                Err(Interrupt::Runtime(e)) => break Verdict::RuntimeError(e, ErrorTrace::default()),
                Err(Interrupt::Budget(reason)) => {
                    break Verdict::ResourceBound {
                        steps: engine.meter.usage.steps,
                        states: engine.summaries.len(),
                        reason,
                    }
                }
                Ok(_) => {
                    let after: usize = engine.summaries.values().map(BTreeSet::len).sum();
                    if after == before {
                        break Verdict::Pass;
                    }
                }
            }
        };
        let stats = EngineStats {
            steps: engine.meter.usage.steps,
            states: engine.summaries.len(),
            summaries: engine.summaries.len(),
            rounds,
            states_stored: engine.stored,
            store_bytes: engine.store_bytes,
            ..EngineStats::default()
        };
        (verdict, stats)
    }
}

struct Engine<'a> {
    module: &'a Module,
    meter: Meter,
    summaries: HashMap<Key, BTreeSet<Exit>>,
    /// Keys currently being analyzed (cycle detection for recursion).
    in_progress: Vec<Key>,
    store: StoreKind,
    /// Fingerprints recorded across all body explorations (gauge).
    stored: usize,
    /// Peak bytes held by a single body's visited table (gauge).
    store_bytes: usize,
}

/// Intra-function exploration state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Memory,
    locals: Vec<Value>,
    pc: usize,
}

struct LocalEnv<'a> {
    module: &'a Module,
    state: &'a mut State,
}

impl Env for LocalEnv<'_> {
    fn read_var(&self, v: VarRef) -> Value {
        match v {
            VarRef::Global(g) => self.state.mem.globals[g.0 as usize],
            VarRef::Local(LocalId(l)) => self.state.locals[l as usize],
        }
    }
    fn write_var(&mut self, v: VarRef, val: Value) {
        match v {
            VarRef::Global(g) => self.state.mem.globals[g.0 as usize] = val,
            VarRef::Local(LocalId(l)) => self.state.locals[l as usize] = val,
        }
    }
    fn read_addr(&self, a: Addr) -> Result<Value, ExecError> {
        match a {
            Addr::Global(g) => Ok(self.state.mem.globals[g.0 as usize]),
            Addr::Heap { obj, field } => self
                .state
                .mem
                .heap
                .get(obj as usize)
                .and_then(|o| o.fields.get(field as usize))
                .copied()
                .ok_or(ExecError::BadField),
            // The summary engine cannot resolve pointers into other
            // frames: entry states abstract the caller's stack away.
            Addr::Local { frame: 0, local, .. } => {
                self.state.locals.get(local as usize).copied().ok_or(ExecError::DanglingLocal)
            }
            Addr::Local { .. } => Err(ExecError::DanglingLocal),
        }
    }
    fn write_addr(&mut self, a: Addr, val: Value) -> Result<(), ExecError> {
        match a {
            Addr::Global(g) => {
                self.state.mem.globals[g.0 as usize] = val;
                Ok(())
            }
            Addr::Heap { obj, field } => {
                *self
                    .state
                    .mem
                    .heap
                    .get_mut(obj as usize)
                    .and_then(|o| o.fields.get_mut(field as usize))
                    .ok_or(ExecError::BadField)? = val;
                Ok(())
            }
            Addr::Local { frame: 0, local, .. } => {
                *self.state.locals.get_mut(local as usize).ok_or(ExecError::DanglingLocal)? = val;
                Ok(())
            }
            Addr::Local { .. } => Err(ExecError::DanglingLocal),
        }
    }
    fn addr_of_var(&self, v: VarRef) -> Addr {
        match v {
            VarRef::Global(g) => Addr::Global(g),
            VarRef::Local(LocalId(l)) => Addr::Local { tid: 0, frame: 0, local: l },
        }
    }
    fn malloc(&mut self, sid: kiss_lang::hir::StructId) -> u32 {
        self.state.mem.malloc(&self.module.program, sid)
    }
}

impl Engine<'_> {
    /// Computes (or reuses) the summary for a key, returning a snapshot
    /// of the exit set.
    //
    // `Key`/`Exit` reach `CowVec`'s chunk-digest atomics, but those are
    // a content-derived cache that `Eq`/`Ord`/`Hash` never read, so the
    // keys are stable despite the interior mutability.
    #[allow(clippy::mutable_key_type)]
    fn analyze(&mut self, key: Key) -> Result<BTreeSet<Exit>, Interrupt> {
        if self.in_progress.contains(&key) {
            // Recursive cycle: use the current partial summary; the
            // outer fixpoint loop re-runs until it stabilizes.
            return Ok(self.summaries.get(&key).cloned().unwrap_or_default());
        }
        if let Some(done) = self.summaries.get(&key) {
            // Reuse: also correct mid-fixpoint because results only grow
            // and the outer loop re-runs until stable.
            if !done.is_empty() {
                return Ok(done.clone());
            }
        }
        self.in_progress.push(key.clone());
        let result = self.explore_body(&key);
        self.in_progress.pop();
        let exits = result?;
        let entry = self.summaries.entry(key).or_default();
        entry.extend(exits.iter().cloned());
        Ok(entry.clone())
    }

    // Digest-cache atomics again; see `analyze`.
    #[allow(clippy::mutable_key_type)]
    fn explore_body(&mut self, key: &Key) -> Result<BTreeSet<Exit>, Interrupt> {
        let def = self.module.program.func(key.func);
        let mut locals: Vec<Value> = Vec::with_capacity(def.locals.len());
        for (i, l) in def.locals.iter().enumerate() {
            if i < key.args.len() {
                locals.push(key.args[i]);
            } else {
                locals.push(Value::default_for(l.ty.as_ref()));
            }
        }
        let initial = State { mem: key.mem.clone(), locals, pc: 0 };

        let mut exits = BTreeSet::new();
        let mut visited = VisitedSet::new(self.store);
        let mut pending: Vec<State> = vec![initial];
        let body = self.module.body(key.func);

        while let Some(mut state) = pending.pop() {
            'path: loop {
                self.meter.tick().map_err(Interrupt::Budget)?;
                if visited.len() > self.meter.budget().max_states {
                    self.meter.emit_violation(BoundReason::States);
                    self.note_store(&visited);
                    return Err(Interrupt::Budget(BoundReason::States));
                }
                // Borrowed, not cloned: see explicit.rs — per-step
                // clones of Call/NondetJump payloads are hot-loop cost.
                match &body.instrs[state.pc] {
                    Instr::Assign(place, rv) => {
                        let mut env = LocalEnv { module: self.module, state: &mut state };
                        eval::exec_assign(&mut env, place, rv).map_err(Interrupt::Runtime)?;
                        state.pc += 1;
                    }
                    Instr::Assert(cond) => {
                        let env = LocalEnv { module: self.module, state: &mut state };
                        match eval::eval_cond(&env, cond).map_err(Interrupt::Runtime)? {
                            true => state.pc += 1,
                            false => return Err(Interrupt::Fail),
                        }
                    }
                    Instr::Assume(cond) => {
                        let env = LocalEnv { module: self.module, state: &mut state };
                        match eval::eval_cond(&env, cond).map_err(Interrupt::Runtime)? {
                            true => state.pc += 1,
                            false => break 'path,
                        }
                    }
                    Instr::Call { dest, target, args } => {
                        if !record(&mut visited, &state).map_err(Interrupt::Budget)? {
                            break 'path;
                        }
                        // One env borrow resolves the callee and
                        // evaluates the arguments together.
                        let (callee, arg_vals) = {
                            let env = LocalEnv { module: self.module, state: &mut state };
                            let callee = crate::explicit::resolve_target(&env, *target)
                                .map_err(Interrupt::Runtime)?;
                            let arg_vals: Vec<Value> =
                                args.iter().map(|a| eval::eval_operand(&env, a)).collect();
                            (callee, arg_vals)
                        };
                        let callee_def = self.module.program.func(callee);
                        if callee_def.param_count as usize != arg_vals.len() {
                            return Err(Interrupt::Runtime(ExecError::ArityMismatch {
                                func: callee,
                                expected: callee_def.param_count,
                                got: arg_vals.len() as u32,
                            }));
                        }
                        let call_key =
                            Key { func: callee, mem: state.mem.clone(), args: arg_vals };
                        let call_exits = self.analyze(call_key)?;
                        if call_exits.is_empty() {
                            // Callee never returns (or cycle not yet
                            // resolved): path ends here this round.
                            break 'path;
                        }
                        state.pc += 1;
                        let mut it = call_exits.into_iter();
                        let first = it.next().expect("nonempty checked");
                        for exit in it {
                            let mut alt = state.clone();
                            apply_exit(self.module, &mut alt, dest, exit)
                                .map_err(Interrupt::Runtime)?;
                            pending.push(alt);
                        }
                        apply_exit(self.module, &mut state, dest, first)
                            .map_err(Interrupt::Runtime)?;
                    }
                    Instr::Async { .. } => {
                        return Err(Interrupt::Runtime(ExecError::AsyncInSequential));
                    }
                    Instr::Return(op) => {
                        let env = LocalEnv { module: self.module, state: &mut state };
                        let ret = op.map(|o| eval::eval_operand(&env, &o)).unwrap_or(Value::Null);
                        exits.insert(Exit { mem: state.mem.clone(), ret });
                        break 'path;
                    }
                    Instr::Jump(target) => {
                        // Cycles always pass through a NondetJump or
                        // Call, which record states; see explicit.rs.
                        state.pc = *target;
                    }
                    Instr::NondetJump(targets) => {
                        if !record(&mut visited, &state).map_err(Interrupt::Budget)? {
                            break 'path;
                        }
                        if targets.is_empty() {
                            break 'path;
                        }
                        for &alt in targets.iter().skip(1).rev() {
                            let mut alt_state = state.clone();
                            alt_state.pc = alt;
                            pending.push(alt_state);
                        }
                        state.pc = targets[0];
                    }
                    Instr::AtomicBegin | Instr::AtomicEnd => state.pc += 1,
                }
            }
        }
        self.note_store(&visited);
        Ok(exits)
    }

    /// Folds one body's visited table into the engine-wide store
    /// gauges.
    fn note_store(&mut self, visited: &VisitedSet) {
        self.stored += visited.len();
        self.store_bytes = self.store_bytes.max(visited.bytes());
    }
}

fn apply_exit(
    module: &Module,
    state: &mut State,
    dest: &Option<kiss_lang::hir::Place>,
    exit: Exit,
) -> Result<(), ExecError> {
    state.mem = exit.mem;
    if let Some(dest) = dest {
        let mut env = LocalEnv { module, state };
        let addr = eval::place_addr(&env, dest)?;
        env.write_addr(addr, exit.ret)?;
    }
    Ok(())
}

fn record(visited: &mut VisitedSet, state: &State) -> Result<bool, BoundReason> {
    let fp = match visited {
        // The historical double-`DefaultHasher` fingerprint, kept
        // bit-for-bit for the legacy store.
        VisitedSet::Legacy(_) => {
            let mut h1 = std::collections::hash_map::DefaultHasher::new();
            state.hash(&mut h1);
            let mut h2 = std::collections::hash_map::DefaultHasher::new();
            0xC0FF_EE00u64.hash(&mut h2);
            state.hash(&mut h2);
            (h1.finish(), h2.finish())
        }
        // One two-lane traversal instead of two SipHash passes.
        VisitedSet::Table(_) => crate::config::fingerprint_of(state),
    };
    visited.insert(fp).map_err(|_| BoundReason::StateCap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitChecker;
    use kiss_lang::parse_and_lower;

    fn check(src: &str) -> Verdict {
        let module = Module::lower(parse_and_lower(src).unwrap());
        SummaryChecker::new(&module).check()
    }

    #[test]
    fn straightline_verdicts() {
        assert!(check("int g; void main() { g = 1; assert g == 1; }").is_pass());
        assert!(check("int g; void main() { g = 1; assert g == 2; }").is_fail());
    }

    #[test]
    fn summaries_are_reused_across_call_sites() {
        let src = "
            int g;
            void bump() { g = g + 1; }
            void main() { bump(); bump(); bump(); assert g == 3; }
        ";
        let module = Module::lower(parse_and_lower(src).unwrap());
        let (v, stats) = SummaryChecker::new(&module).check_with_stats();
        assert!(v.is_pass(), "{v:?}");
        // bump is entered with g = 0, 1, 2: three summaries plus main.
        assert_eq!(stats.summaries, 4);
    }

    #[test]
    fn choice_inside_callee_produces_multiple_exits() {
        let v = check(
            "int pick() { choice { return 1; [] return 2; } }
             void main() { int x; x = pick(); assert x >= 1; assert x <= 2; }",
        );
        assert!(v.is_pass(), "{v:?}");
        let v = check(
            "int pick() { choice { return 1; [] return 2; } }
             void main() { int x; x = pick(); assert x == 1; }",
        );
        assert!(v.is_fail());
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        // Count down recursively; finite states.
        let v = check(
            "int dec(int n) { int r; if (n == 0) { return 0; } r = dec(n - 1); return r; }
             void main() { int x; x = dec(3); assert x == 0; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }

    #[test]
    fn agrees_with_explicit_on_a_corpus() {
        let corpus = [
            "int g; void main() { g = 2 * 3; assert g == 6; }",
            "int g; void main() { choice { g = 1; [] g = 2; } assert g != 3; }",
            "int g; void main() { choice { g = 1; [] g = 2; } assert g == 1; }",
            "int g; void main() { iter { g = g + 1; assume g <= 2; } assert g <= 2; }",
            "int g; void main() { iter { g = g + 1; assume g <= 2; } assert g < 2; }",
            "bool b; void flip() { b = !b; } void main() { flip(); flip(); assert !b; }",
            "struct D { int x; } void main() { D *p; p = malloc(D); p->x = 4; assert p->x == 4; }",
        ];
        for src in corpus {
            let module = Module::lower(parse_and_lower(src).unwrap());
            let explicit = ExplicitChecker::new(&module).check();
            let summary = SummaryChecker::new(&module).check();
            assert_eq!(
                explicit.is_fail(),
                summary.is_fail(),
                "engines disagree on: {src}\nexplicit={explicit:?} summary={summary:?}"
            );
        }
    }

    #[test]
    fn budget_trips() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } }").unwrap(),
        );
        let v = SummaryChecker::new(&module)
            .with_budget(Budget::steps_states(5_000, 100_000))
            .check();
        assert!(v.is_inconclusive(), "{v:?}");
    }

    #[test]
    fn cancellation_is_observed() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } }").unwrap(),
        );
        let cancel = CancelToken::new();
        cancel.cancel();
        let v = SummaryChecker::new(&module).with_cancel(cancel).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let module = Module::lower(
            parse_and_lower("int g; void main() { iter { g = g + 1; } }").unwrap(),
        );
        let budget = Budget::generous().with_deadline(std::time::Duration::ZERO);
        let v = SummaryChecker::new(&module).with_budget(budget).check();
        let Verdict::ResourceBound { reason, .. } = v else { panic!("{v:?}") };
        assert_eq!(reason, BoundReason::Deadline);
    }

    #[test]
    fn heap_growth_inside_callee_is_visible_to_caller() {
        let v = check(
            "struct D { int x; }
             D *mk() { D *p; p = malloc(D); p->x = 11; return p; }
             void main() { D *q; q = mk(); assert q->x == 11; }",
        );
        assert!(v.is_pass(), "{v:?}");
    }
}
