//! Check outcomes and error traces.

use kiss_exec::ExecError;
use kiss_lang::hir::{FuncId, Origin};
use kiss_lang::Span;

use crate::budget::BoundReason;

/// One executed instruction in an error trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Function containing the instruction.
    pub func: FuncId,
    /// Program counter within the function body.
    pub pc: usize,
    /// Provenance (user statement vs. KISS instrumentation).
    pub origin: Origin,
    /// Source span of the originating statement.
    pub span: Span,
}

/// A full error trace: every instruction executed from the initial
/// state to the failure, in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErrorTrace {
    /// The executed steps.
    pub steps: Vec<TraceStep>,
    /// Global variable values at the failure point (used by race
    /// reporting to recover which site performed the first access).
    pub globals: Vec<kiss_exec::Value>,
}

impl ErrorTrace {
    /// Only the steps that originate from user statements (what a
    /// developer reads, and what trace back-mapping consumes).
    pub fn user_steps(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter().filter(|s| s.origin == Origin::User)
    }
}

/// The outcome of a sequential check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The full (budget-permitting exhaustive) search found no
    /// assertion failure.
    Pass,
    /// An assertion failed; the trace leads to it.
    Fail(ErrorTrace),
    /// The program performed an operation with undefined semantics.
    RuntimeError(ExecError, ErrorTrace),
    /// The search exceeded its budget before completing.
    ResourceBound {
        /// Instructions executed when the budget tripped.
        steps: u64,
        /// Distinct states recorded when the budget tripped.
        states: usize,
        /// Which budget axis tripped.
        reason: BoundReason,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }

    /// `true` for [`Verdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// `true` for [`Verdict::ResourceBound`].
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::ResourceBound { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Fail(t) => write!(f, "assertion failure after {} step(s)", t.steps.len()),
            Verdict::RuntimeError(e, _) => write!(f, "runtime error: {e}"),
            Verdict::ResourceBound { steps, states, reason } => {
                write!(f, "resource bound exceeded: {reason} ({steps} steps, {states} states)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_match_variants() {
        assert!(Verdict::Pass.is_pass());
        assert!(Verdict::Fail(ErrorTrace::default()).is_fail());
        let rb = Verdict::ResourceBound { steps: 1, states: 1, reason: BoundReason::Steps };
        assert!(rb.is_inconclusive());
        assert!(!Verdict::Pass.is_fail());
    }

    #[test]
    fn user_steps_filters_instrumentation() {
        let mk = |origin| TraceStep { func: FuncId(0), pc: 0, origin, span: Span::synthetic() };
        let t = ErrorTrace {
            steps: vec![mk(Origin::User), mk(Origin::Sched), mk(Origin::User), mk(Origin::Raise)],
            globals: Vec::new(),
        };
        assert_eq!(t.user_steps().count(), 2);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(Verdict::Pass.to_string(), "pass");
        let rb = Verdict::ResourceBound { steps: 5, states: 2, reason: BoundReason::Deadline };
        assert!(rb.to_string().contains("5 steps"));
        assert!(rb.to_string().contains("deadline"));
    }
}
