//! Property tests of the sharded visited table: no matter how inserts
//! interleave across shards, membership, distinct counts, id
//! stability, and claim resolution must match what a single
//! [`VisitedTable`] would record for the same fingerprint sequence.

use kiss_seq::{ShardedVisitedTable, VisitedTable};
use proptest::prelude::*;

/// A small fingerprint pool whose high bits spread across all 16
/// shards and whose size forces duplicate insertions: `hi` seeds the
/// shard selector, `lo` the within-shard probe sequence.
fn fp_pool() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sharded_membership_matches_a_single_table(
        pool in fp_pool(),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..96),
    ) {
        let single = &mut VisitedTable::new();
        let sharded = ShardedVisitedTable::<()>::new();
        for (i, pick) in picks.iter().enumerate() {
            let fp = pool[pick.index(pool.len())];
            let (_, single_new) = single.insert(fp).expect("unbounded");
            let (_, sharded_new) =
                sharded.insert_claimed(fp, i as u32, 0).expect("unbounded");
            // The same sequence sees the same novelty on both sides.
            prop_assert_eq!(single_new, sharded_new, "insert #{} of {:?}", i, fp);
        }
        prop_assert_eq!(single.len(), sharded.len());
        for &fp in &pool {
            prop_assert_eq!(single.contains(fp), sharded.contains(fp), "{:?}", fp);
        }
        // Fingerprints never inserted are in neither table. Flipping
        // the low bits dodges the pool without changing the shard.
        for &(hi, lo) in &pool {
            let absent = (hi, !lo);
            if !pool.contains(&absent) {
                prop_assert!(!sharded.contains(absent));
            }
        }
    }

    #[test]
    fn ids_are_stable_and_insertion_order_preserves_membership(
        pool in fp_pool(),
        reorder in any::<u64>(),
    ) {
        // Forward insertion: remember each fingerprint's id.
        let forward = ShardedVisitedTable::<()>::new();
        let mut ids = Vec::new();
        for (i, &fp) in pool.iter().enumerate() {
            let (id, _) = forward.insert_claimed(fp, i as u32, 0).expect("unbounded");
            ids.push(id);
        }
        // Re-inserting in any order returns the recorded id, never a
        // fresh one: an id, once handed out, is stable for the table's
        // lifetime.
        let mut order: Vec<usize> = (0..pool.len()).collect();
        let mut state = reorder | 1;
        for i in (1..order.len()).rev() {
            // xorshift; any deterministic shuffle works here.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state as usize) % (i + 1));
        }
        for &at in &order {
            let (id, new) =
                forward.insert_claimed(pool[at], u32::MAX, u32::MAX).expect("unbounded");
            prop_assert!(!new);
            prop_assert_eq!(id, ids[at]);
        }
        // A table built in the shuffled order holds exactly the same
        // fingerprints (ids may differ; membership may not).
        let shuffled = ShardedVisitedTable::<()>::new();
        for &at in &order {
            shuffled.insert_claimed(pool[at], 0, 0).expect("unbounded");
        }
        prop_assert_eq!(shuffled.len(), forward.len());
        for &fp in &pool {
            prop_assert!(shuffled.contains(fp));
        }
    }

    #[test]
    fn claims_min_merge_regardless_of_arrival_order(
        fp in (any::<u64>(), any::<u64>()),
        claims in prop::collection::vec((0u32..1000, 0u32..8), 1..32),
    ) {
        // Every claimant races to insert the same state; whichever
        // arrival order the scheduler produced, the recorded claim is
        // the minimal (rank, tidx) — the one a serial run sees first.
        let table = ShardedVisitedTable::<()>::new();
        let mut id = None;
        for &(rank, tidx) in &claims {
            let (got, _) = table.insert_claimed(fp, rank, tidx).expect("unbounded");
            prop_assert!(id.is_none() || id == Some(got));
            id = Some(got);
        }
        let expect = claims.iter().copied().min().expect("non-empty");
        prop_assert_eq!(table.claim_of(id.expect("inserted")), Some(expect));
        // Sealing the layer turns the entry into a prior-layer state:
        // no longer claimable, still a member.
        table.seal();
        prop_assert_eq!(table.claim_of(id.expect("inserted")), None);
        prop_assert!(table.contains(fp));
    }
}
