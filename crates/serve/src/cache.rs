//! The content-addressed result cache.
//!
//! Verdicts are keyed by the request's 128-bit content fingerprint
//! ([`crate::protocol::Request::cache_key`]). The in-memory index is
//! sharded: [`SHARD_COUNT`] independently locked open-addressed tables
//! (the same probing shape as `kiss-seq`'s visited table), with the
//! shard picked by the key's top bits — so concurrent lookups and
//! inserts on different shards never contend. Every insert is appended
//! to a single on-disk journal stream so a restarted server comes back
//! warm.
//!
//! Lock pressure is observable: the cache counts every shard-lock
//! acquisition and every acquisition that found the lock held
//! ([`ResultCache::lock_stats`]), and the server surfaces both in the
//! `metrics` snapshot — the proof that sharding removed the old
//! single-mutex contention is a contended/acquired ratio near zero
//! under concurrent load.
//!
//! The journal is line-oriented, one record per line. Current records
//! carry a per-record FNV-1a checksum over everything before the last
//! tab, so a torn or bit-flipped record is detected and skipped instead
//! of replaying a wrong verdict:
//!
//! ```text
//! v2<TAB>0123...cdef<TAB>verdict<TAB>steps<TAB>states<TAB>detail<TAB>checksum
//! ```
//!
//! Legacy `v1` records (no checksum) from journals written before the
//! format change still replay. Control characters in the detail are
//! sanitized to spaces on write. Loading tolerates torn or garbage
//! lines (a crash mid-append loses at most the final record), and a
//! later record for the same key overrides an earlier one.
//!
//! Because the journal is append-only, overridden and re-journaled
//! records accumulate; [`ResultCache::compact`] rewrites the file to
//! one canonical record per live entry (sorted by key, so compaction
//! is byte-reproducible), and inserts trigger it automatically once
//! the journal holds ~4x more records than live entries.
//!
//! Failpoints (`serve.journal.append`, `serve.journal.compact`) let
//! the chaos suite inject torn writes, append errors, and compaction
//! failures; every fired injection is reported through the cache's
//! [`Obs`] handle as a `fault_injected` event.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

use kiss_fault::Action;
use kiss_obs::{Event, Obs};

/// The journal file's name inside the cache directory.
pub const JOURNAL_FILE: &str = "cache.journal";

/// Independently locked index partitions. A power of two; the shard is
/// the key's top four bits, so uniformly mixed fingerprints spread
/// evenly.
pub const SHARD_COUNT: usize = 16;

/// Failpoint: one journal append (error = drop the record, truncate =
/// torn write of the record's first K bytes).
const APPEND_POINT: &str = "serve.journal.append";

/// Failpoint: one compaction pass (error = abort, journal untouched).
const COMPACT_POINT: &str = "serve.journal.compact";

/// A cached check verdict — exactly the deterministic half of a
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The verdict string (`pass`, `race`, ...).
    pub verdict: String,
    /// The deterministic detail line.
    pub detail: String,
    /// Steps the check executed.
    pub steps: u64,
    /// Distinct states the check recorded.
    pub states: u64,
}

/// What journal replay found on open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Valid records applied to the index (overrides included).
    pub replayed: usize,
    /// Garbage, torn, or checksum-failed lines skipped.
    pub skipped: usize,
}

/// One index partition: a power-of-two slot array, linear probing.
struct Shard {
    slots: Vec<Option<(u128, CachedVerdict)>>,
    len: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard { slots: vec![None; ResultCache::INITIAL_SHARD_CAPACITY], len: 0 }
    }

    fn lookup(&self, key: u128) -> Option<&CachedVerdict> {
        let mask = self.slots.len() - 1;
        let mut idx = slot_of(key) & mask;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    /// Inserts or overrides; `true` when the key is new to this shard.
    fn insert(&mut self, key: u128, verdict: CachedVerdict) -> bool {
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = slot_of(key) & mask;
        loop {
            match &mut self.slots[idx] {
                slot @ None => {
                    *slot = Some((key, verdict));
                    self.len += 1;
                    return true;
                }
                Some((k, v)) if *k == key => {
                    *v = verdict;
                    return false;
                }
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; doubled]);
        self.len = 0;
        for (key, verdict) in old.into_iter().flatten() {
            self.insert(key, verdict);
        }
    }
}

/// The single append stream behind every shard, plus its accounting.
/// One mutex guards it: appends are short buffered writes, and keeping
/// the stream singular preserves the on-disk format exactly.
struct Journal {
    writer: Option<BufWriter<File>>,
    /// The journal's path, for compaction rewrites.
    path: Option<PathBuf>,
    /// Lines currently in the journal file (valid or not), replay
    /// included — the auto-compaction trigger.
    records: usize,
    /// Approximate journal size on disk (bytes appended since open,
    /// plus what replay found; reset to the exact image size by
    /// compaction).
    bytes: u64,
    /// Compaction passes completed since open.
    compactions: u64,
    auto_compact_min: usize,
    obs: Obs,
}

impl Journal {
    fn append(&mut self, key: u128, verdict: &CachedVerdict) {
        if self.writer.is_none() {
            return;
        }
        let line = encode_record(key, verdict);
        let action = kiss_fault::hit(APPEND_POINT);
        if let Some(action) = action {
            self.note_fault(APPEND_POINT, action);
        }
        match action {
            // The record is dropped on the floor: the entry degrades to
            // memory-only, exactly like a real failed write.
            Some(Action::Error) => return,
            Some(Action::Panic) => panic!("kiss-fault: injected panic at {APPEND_POINT}"),
            Some(Action::Delay(d)) => std::thread::sleep(d),
            Some(Action::Truncate(cut)) => {
                // A torn write: the record's head lands in the file with
                // no newline, as if the process died mid-append.
                let writer = self.writer.as_mut().expect("checked above");
                let cut = cut.min(line.len());
                let _ = writer.write_all(&line.as_bytes()[..cut]);
                let _ = writer.flush();
                self.records += 1;
                self.bytes += cut as u64;
                return;
            }
            None => {}
        }
        let writer = self.writer.as_mut().expect("checked above");
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
        self.records += 1;
        self.bytes += line.len() as u64 + 1;
    }

    fn note_fault(&self, point: &str, action: Action) {
        self.obs.emit(|_| Event::FaultInjected {
            point: point.to_string(),
            action: action.name().to_string(),
        });
    }
}

/// The cache: sharded open-addressed index plus one optional
/// append-only journal. All methods take `&self`; locking is interior
/// and per-shard, so concurrent readers and writers on different keys
/// proceed in parallel.
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    /// Live entries across all shards (kept outside the shard locks so
    /// `len` and the auto-compaction trigger need no sweep).
    live: AtomicUsize,
    journal: Mutex<Journal>,
    replay: ReplayStats,
    /// Shard-lock acquisitions since open.
    lock_acquires: AtomicU64,
    /// Acquisitions that found the shard lock already held and had to
    /// block — the contention signal the `metrics` op surfaces.
    lock_contended: AtomicU64,
}

impl ResultCache {
    const INITIAL_SHARD_CAPACITY: usize = 16;

    /// Journals shorter than this never auto-compact: rewriting a tiny
    /// file buys nothing.
    const AUTO_COMPACT_MIN: usize = 1024;

    /// A cache with no journal: verdicts live for this process only.
    pub fn in_memory() -> ResultCache {
        ResultCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::new())).collect(),
            live: AtomicUsize::new(0),
            journal: Mutex::new(Journal {
                writer: None,
                path: None,
                records: 0,
                bytes: 0,
                compactions: 0,
                auto_compact_min: Self::AUTO_COMPACT_MIN,
                obs: Obs::off(),
            }),
            replay: ReplayStats::default(),
            lock_acquires: AtomicU64::new(0),
            lock_contended: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) the journal-backed cache in `dir`,
    /// replaying any existing journal into the index.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut cache = ResultCache::in_memory();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let journal = cache.journal.get_mut().expect("journal lock");
                journal.bytes = text.len() as u64;
                for line in text.lines() {
                    // Garbage and torn lines are skipped, not fatal: the
                    // cache is an accelerator, never a source of truth.
                    journal.records += 1;
                    if let Some((key, verdict)) = parse_line(line) {
                        let shard =
                            cache.shards[shard_index(key)].get_mut().expect("shard lock");
                        if shard.insert(key, verdict) {
                            *cache.live.get_mut() += 1;
                        }
                        cache.replay.replayed += 1;
                    } else {
                        cache.replay.skipped += 1;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let journal = cache.journal.get_mut().expect("journal lock");
        journal.writer = Some(BufWriter::new(file));
        journal.path = Some(path);
        Ok(cache)
    }

    /// Routes this cache's `fault_injected` events into `obs`.
    pub fn with_observer(self, obs: Obs) -> ResultCache {
        self.journal.lock().expect("journal lock").obs = obs;
        self
    }

    /// Overrides the auto-compaction floor (tests shrink it; the
    /// default is [`Self::AUTO_COMPACT_MIN`] records).
    pub fn with_auto_compact_min(self, min: usize) -> ResultCache {
        self.journal.lock().expect("journal lock").auto_compact_min = min;
        self
    }

    /// Cached verdicts held.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index partitions ([`SHARD_COUNT`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(acquisitions, contended)` shard-lock counts since open. The
    /// contended count is how many acquisitions found the lock held;
    /// under a well-sharded load it stays near zero.
    pub fn lock_stats(&self) -> (u64, u64) {
        (
            self.lock_acquires.load(Ordering::Relaxed),
            self.lock_contended.load(Ordering::Relaxed),
        )
    }

    /// What replaying the journal found when this cache was opened.
    pub fn replay_stats(&self) -> ReplayStats {
        self.replay
    }

    /// Lines currently in the journal file (live records, overridden
    /// duplicates, and skipped garbage).
    pub fn journal_records(&self) -> usize {
        self.journal.lock().expect("journal lock").records
    }

    /// Approximate journal size in bytes (exact after a compaction).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.lock().expect("journal lock").bytes
    }

    /// Compaction passes completed since this cache was opened.
    pub fn compactions(&self) -> u64 {
        self.journal.lock().expect("journal lock").compactions
    }

    /// Locks a key's shard, counting the acquisition and whether it had
    /// to block.
    fn shard(&self, key: u128) -> MutexGuard<'_, Shard> {
        self.lock_acquires.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[shard_index(key)];
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.lock_contended.fetch_add(1, Ordering::Relaxed);
                shard.lock().expect("shard lock")
            }
            Err(TryLockError::Poisoned(e)) => panic!("shard lock: {e}"),
        }
    }

    /// Looks a fingerprint up (the verdict is cloned out of the shard
    /// so the lock is held only for the probe).
    pub fn lookup(&self, key: u128) -> Option<CachedVerdict> {
        self.shard(key).lookup(key).cloned()
    }

    /// Inserts (or overrides) a verdict, appending it to the journal.
    /// The shard lock is released before the journal lock is taken, so
    /// index traffic on other shards never waits on disk I/O. Journal
    /// write failures are swallowed: a full disk degrades the cache to
    /// in-memory, it does not take the server down.
    pub fn insert(&self, key: u128, verdict: CachedVerdict) {
        let fresh = self.shard(key).insert(key, verdict.clone());
        if fresh {
            self.live.fetch_add(1, Ordering::SeqCst);
        }
        let mut journal = self.journal.lock().expect("journal lock");
        journal.append(key, &verdict);
        if journal.writer.is_some()
            && journal.records >= journal.auto_compact_min
            && journal.records >= self.len().saturating_mul(4)
        {
            // A failed auto-compaction is not an error path: the journal
            // keeps appending and the next insert retries.
            let _ = self.compact_locked(&mut journal);
        }
    }

    /// Rewrites the journal to one record per live entry, sorted by
    /// key. The new image goes to a sibling `.tmp` file first and is
    /// renamed over the journal, so a crash mid-compaction leaves the
    /// original intact. Sorting makes the result canonical: compacting
    /// a compacted journal reproduces it byte for byte.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or renaming the new image; the original
    /// journal is untouched in that case.
    pub fn compact(&self) -> io::Result<()> {
        let mut journal = self.journal.lock().expect("journal lock");
        self.compact_locked(&mut journal)
    }

    fn compact_locked(&self, journal: &mut Journal) -> io::Result<()> {
        let Some(path) = journal.path.clone() else { return Ok(()) };
        if let Some(action) = kiss_fault::hit(COMPACT_POINT) {
            journal.note_fault(COMPACT_POINT, action);
            match action {
                Action::Error | Action::Truncate(_) => {
                    return Err(io::Error::other("kiss-fault: injected compaction failure"));
                }
                Action::Panic => panic!("kiss-fault: injected panic at {COMPACT_POINT}"),
                Action::Delay(d) => std::thread::sleep(d),
            }
        }
        // Sweep the shards (each locked briefly in turn) into one sorted
        // image. An insert racing this sweep either lands in the image
        // or appends to the new stream after the rename — both valid.
        let mut entries: Vec<(u128, CachedVerdict)> = Vec::with_capacity(self.len());
        for key_shard in 0..self.shards.len() {
            let shard = {
                self.lock_acquires.fetch_add(1, Ordering::Relaxed);
                self.shards[key_shard].lock().expect("shard lock")
            };
            entries.extend(shard.slots.iter().flatten().cloned());
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        let tmp = {
            let mut os = path.clone().into_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let write_image = || -> io::Result<u64> {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let mut bytes = 0u64;
            for (key, verdict) in &entries {
                let record = encode_record(*key, verdict);
                out.write_all(record.as_bytes())?;
                out.write_all(b"\n")?;
                bytes += record.len() as u64 + 1;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
            Ok(bytes)
        };
        let bytes = match write_image() {
            Ok(bytes) => bytes,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        // Close the append handle before swapping the file under it.
        journal.writer = None;
        std::fs::rename(&tmp, &path)?;
        journal.writer =
            Some(BufWriter::new(OpenOptions::new().append(true).open(&path)?));
        journal.records = entries.len();
        journal.bytes = bytes;
        journal.compactions += 1;
        Ok(())
    }
}

/// The shard a key lives in: the fingerprint's top bits (its "prefix"),
/// so related keys spread by content, not by insertion order.
fn shard_index(key: u128) -> usize {
    (key >> (128 - SHARD_COUNT.trailing_zeros())) as usize
}

/// The fingerprint is already uniformly mixed, so the slot index just
/// folds the two lanes together.
fn slot_of(key: u128) -> usize {
    ((key as u64) ^ ((key >> 64) as u64)) as usize
}

/// Replaces the journal's separators (tabs, newlines) and other control
/// characters with spaces so a record stays one line of fixed fields.
fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_control() { ' ' } else { c }).collect()
}

/// FNV-1a, the record checksum. Not cryptographic — it guards against
/// torn writes and bit rot, not adversaries (the journal is local,
/// trusted state).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One checksummed `v2` journal line (no trailing newline).
fn encode_record(key: u128, v: &CachedVerdict) -> String {
    let body = format!(
        "v2\t{key:032x}\t{}\t{}\t{}\t{}",
        sanitize(&v.verdict),
        v.steps,
        v.states,
        sanitize(&v.detail),
    );
    let sum = fnv1a64(body.as_bytes());
    format!("{body}\t{sum:016x}")
}

fn parse_line(line: &str) -> Option<(u128, CachedVerdict)> {
    if let Some(rest) = line.strip_prefix("v1\t") {
        // Legacy record: no checksum, five fields after the tag.
        return parse_fields(rest);
    }
    let (body, sum) = line.rsplit_once('\t')?;
    let rest = body.strip_prefix("v2\t")?;
    if u64::from_str_radix(sum, 16).ok()? != fnv1a64(body.as_bytes()) {
        return None;
    }
    parse_fields(rest)
}

fn parse_fields(rest: &str) -> Option<(u128, CachedVerdict)> {
    let mut parts = rest.splitn(5, '\t');
    let key = u128::from_str_radix(parts.next()?, 16).ok()?;
    let verdict = parts.next()?.to_string();
    let steps = parts.next()?.parse().ok()?;
    let states = parts.next()?.parse().ok()?;
    let detail = parts.next()?.to_string();
    Some((key, CachedVerdict { verdict, detail, steps, states }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn verdict(tag: u64) -> CachedVerdict {
        CachedVerdict {
            verdict: "pass".to_string(),
            detail: format!("no error found #{tag}"),
            steps: tag,
            states: tag / 2,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kiss_serve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_lookup_override_and_growth() {
        let cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        // Enough entries to force several growth rounds; the shifts
        // spread keys across slots AND shards (high bits vary).
        for i in 0..500u64 {
            cache.insert((u128::from(i) << 7) | (u128::from(i) << 120), verdict(i));
        }
        assert_eq!(cache.len(), 500);
        for i in 0..500u64 {
            assert_eq!(
                cache.lookup((u128::from(i) << 7) | (u128::from(i) << 120)),
                Some(verdict(i))
            );
        }
        assert_eq!(cache.lookup(0xdead_beef), None);
        // A later insert for the same key overrides.
        cache.insert(u128::from(0u64), verdict(999));
        assert_eq!(cache.len(), 500);
        assert_eq!(cache.lookup(0).unwrap().steps, 999);
        let (acquires, _) = cache.lock_stats();
        assert!(acquires >= 1000, "every lookup and insert counts, got {acquires}");
    }

    #[test]
    fn keys_spread_across_shards_by_prefix() {
        let cache = ResultCache::in_memory();
        // Keys differing only in their top bits land in distinct shards.
        for i in 0..SHARD_COUNT as u128 {
            cache.insert(i << 124, verdict(i as u64));
        }
        assert_eq!(cache.len(), SHARD_COUNT);
        let occupied = cache
            .shards
            .iter()
            .filter(|s| s.lock().unwrap().len > 0)
            .count();
        assert_eq!(occupied, SHARD_COUNT, "one key per shard");
    }

    #[test]
    fn concurrent_inserts_and_lookups_stay_consistent() {
        let cache = std::sync::Arc::new(ResultCache::in_memory());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = (u128::from(t * 1000 + i)) << 100;
                        cache.insert(key, verdict(t * 1000 + i));
                        assert_eq!(cache.lookup(key), Some(verdict(t * 1000 + i)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.len(), 800);
        let (acquires, contended) = cache.lock_stats();
        assert!(acquires >= 1600);
        // Contention is possible but must be the exception, not the rule.
        assert!(contended < acquires, "{contended}/{acquires}");
    }

    #[test]
    fn journal_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.insert(7, verdict(7));
            cache.insert(8, verdict(8));
            cache.insert(7, verdict(70)); // override, journaled twice
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(7).unwrap().steps, 70, "later record wins");
        assert_eq!(cache.lookup(8), Some(verdict(8)));
        assert_eq!(cache.replay_stats(), ReplayStats { replayed: 3, skipped: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_garbage_journal_lines_are_skipped() {
        let dir = temp_dir("torn");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.insert(1, verdict(1));
        }
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("complete garbage\n");
        text.push_str("v9\t0\tpass\t0\t0\tfuture version\n");
        // A good record, then the same record torn mid-write: the torn
        // copy fails its checksum and must not shadow anything.
        text.push_str(&encode_record(2, &verdict(2)));
        text.push('\n');
        let torn = encode_record(3, &verdict(3));
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1), Some(verdict(1)));
        assert_eq!(cache.lookup(2), Some(verdict(2)));
        assert_eq!(cache.lookup(3), None);
        assert_eq!(cache.replay_stats(), ReplayStats { replayed: 2, skipped: 3 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interleaved_garbage_between_records_is_skipped() {
        let dir = temp_dir("interleave");
        let path = dir.join(JOURNAL_FILE);
        std::fs::create_dir_all(&dir).unwrap();
        let mut text = String::new();
        for i in 0..8u64 {
            text.push_str(&encode_record(u128::from(i), &verdict(i)));
            text.push('\n');
            text.push_str(&format!("garbage between records {i}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 8);
        for i in 0..8u64 {
            assert_eq!(cache.lookup(u128::from(i)), Some(verdict(i)));
        }
        assert_eq!(cache.replay_stats(), ReplayStats { replayed: 8, skipped: 8 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_record_fails_its_checksum() {
        let dir = temp_dir("bitflip");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.insert(5, verdict(5));
        }
        let path = dir.join(JOURNAL_FILE);
        // Flip one character inside the verdict field: "pass" -> "paXs".
        let text = std::fs::read_to_string(&path).unwrap().replace("pass", "paXs");
        assert!(text.contains("paXs"), "fixture must actually corrupt the record");
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 0, "a corrupt verdict must not replay");
        assert_eq!(cache.replay_stats(), ReplayStats { replayed: 0, skipped: 1 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_records_still_replay() {
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(JOURNAL_FILE),
            "v1\t00000000000000000000000000000009\tpass\t9\t4\tno error found #9\n",
        )
        .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(9), Some(verdict(9)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn details_with_separators_stay_one_record() {
        let dir = temp_dir("sanitize");
        let nasty = CachedVerdict {
            verdict: "error".to_string(),
            detail: "line one\nline\ttwo".to_string(),
            steps: 0,
            states: 0,
        };
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.insert(3, nasty);
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(3).unwrap().detail, "line one line two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_dead_records_and_is_byte_reproducible() {
        let dir = temp_dir("compact");
        {
            let cache = ResultCache::open(&dir).unwrap();
            for round in 0..10u64 {
                for key in 0..20u64 {
                    cache.insert(u128::from(key), verdict(key * 100 + round));
                }
            }
            assert_eq!(cache.journal_records(), 200);
            let bytes_before = cache.journal_bytes();
            assert_eq!(
                bytes_before,
                std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len()
            );
            assert_eq!(cache.compactions(), 0);
            cache.compact().unwrap();
            assert_eq!(cache.journal_records(), 20);
            assert_eq!(cache.compactions(), 1);
            assert!(cache.journal_bytes() < bytes_before);
            assert_eq!(
                cache.journal_bytes(),
                std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len()
            );
            // The journal stays appendable after the swap.
            cache.insert(999, verdict(999));
            assert_eq!(
                cache.journal_bytes(),
                std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len()
            );
        }
        let path = dir.join(JOURNAL_FILE);
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 21);
        assert_eq!(
            cache.journal_bytes(),
            std::fs::metadata(&path).unwrap().len(),
            "replay seeds journal_bytes from the file"
        );
        for key in 0..20u64 {
            assert_eq!(cache.lookup(u128::from(key)).unwrap().steps, key * 100 + 9);
        }
        // Compacting a compacted journal reproduces it byte for byte.
        cache.compact().unwrap();
        let first = std::fs::read(&path).unwrap();
        drop(cache);
        let cache = ResultCache::open(&dir).unwrap();
        cache.compact().unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_every_shard_into_one_image() {
        let dir = temp_dir("shardcompact");
        {
            let cache = ResultCache::open(&dir).unwrap();
            // One key per shard, then overrides to bloat the journal.
            for i in 0..SHARD_COUNT as u128 {
                cache.insert(i << 124, verdict(i as u64));
                cache.insert(i << 124, verdict(i as u64 + 100));
            }
            cache.compact().unwrap();
            assert_eq!(cache.journal_records(), SHARD_COUNT);
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), SHARD_COUNT);
        for i in 0..SHARD_COUNT as u128 {
            assert_eq!(cache.lookup(i << 124).unwrap().steps, i as u64 + 100);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inserts_auto_compact_once_the_journal_bloats() {
        let dir = temp_dir("autocompact");
        let cache =
            ResultCache::open(&dir).unwrap().with_auto_compact_min(32);
        // Hammer four keys: the journal grows with every override until
        // it crosses 4x the live count and collapses back to 4 records.
        for round in 0..40u64 {
            for key in 0..4u64 {
                cache.insert(u128::from(key), verdict(round));
            }
        }
        assert_eq!(cache.len(), 4);
        assert!(
            cache.journal_records() < 40,
            "journal should have auto-compacted, has {} records",
            cache.journal_records()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
