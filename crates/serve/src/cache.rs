//! The content-addressed result cache.
//!
//! Verdicts are keyed by the request's 128-bit content fingerprint
//! ([`crate::protocol::Request::cache_key`]). The in-memory index is an
//! open-addressed table probing directly on the fingerprint (the same
//! shape as `kiss-seq`'s visited table), and every insert is appended
//! to an on-disk journal so a restarted server comes back warm.
//!
//! The journal is line-oriented, one record per line:
//!
//! ```text
//! v1<TAB>0123...cdef<TAB>verdict<TAB>steps<TAB>states<TAB>detail
//! ```
//!
//! Control characters in the detail are sanitized to spaces on write.
//! Loading tolerates torn or garbage lines (a crash mid-append loses at
//! most the final record), and a later record for the same key
//! overrides an earlier one.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// The journal file's name inside the cache directory.
pub const JOURNAL_FILE: &str = "cache.journal";

/// A cached check verdict — exactly the deterministic half of a
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The verdict string (`pass`, `race`, ...).
    pub verdict: String,
    /// The deterministic detail line.
    pub detail: String,
    /// Steps the check executed.
    pub steps: u64,
    /// Distinct states the check recorded.
    pub states: u64,
}

/// The cache: open-addressed index plus optional append-only journal.
pub struct ResultCache {
    /// Power-of-two slot array, linear probing.
    slots: Vec<Option<(u128, CachedVerdict)>>,
    len: usize,
    journal: Option<BufWriter<File>>,
}

impl ResultCache {
    const INITIAL_CAPACITY: usize = 64;

    /// A cache with no journal: verdicts live for this process only.
    pub fn in_memory() -> ResultCache {
        ResultCache {
            slots: vec![None; Self::INITIAL_CAPACITY],
            len: 0,
            journal: None,
        }
    }

    /// Opens (creating if needed) the journal-backed cache in `dir`,
    /// replaying any existing journal into the index.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut cache = ResultCache::in_memory();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    // Garbage and torn lines are skipped, not fatal: the
                    // cache is an accelerator, never a source of truth.
                    if let Some((key, verdict)) = parse_line(line) {
                        cache.insert_slot(key, verdict);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        cache.journal = Some(BufWriter::new(file));
        Ok(cache)
    }

    /// Cached verdicts held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks a fingerprint up.
    pub fn lookup(&self, key: u128) -> Option<&CachedVerdict> {
        let mask = self.slots.len() - 1;
        let mut idx = slot_of(key) & mask;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    /// Inserts (or overrides) a verdict, appending it to the journal.
    /// Journal write failures are swallowed: a full disk degrades the
    /// cache to in-memory, it does not take the server down.
    pub fn insert(&mut self, key: u128, verdict: CachedVerdict) {
        if let Some(journal) = &mut self.journal {
            let _ = writeln!(
                journal,
                "v1\t{key:032x}\t{}\t{}\t{}\t{}",
                sanitize(&verdict.verdict),
                verdict.steps,
                verdict.states,
                sanitize(&verdict.detail),
            );
            let _ = journal.flush();
        }
        self.insert_slot(key, verdict);
    }

    fn insert_slot(&mut self, key: u128, verdict: CachedVerdict) {
        // Grow at 3/4 load so probe chains stay short.
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = slot_of(key) & mask;
        loop {
            match &mut self.slots[idx] {
                slot @ None => {
                    *slot = Some((key, verdict));
                    self.len += 1;
                    return;
                }
                Some((k, v)) if *k == key => {
                    *v = verdict;
                    return;
                }
                Some(_) => idx = (idx + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; doubled]);
        self.len = 0;
        for (key, verdict) in old.into_iter().flatten() {
            self.insert_slot(key, verdict);
        }
    }
}

/// The fingerprint is already uniformly mixed, so the slot index just
/// folds the two lanes together.
fn slot_of(key: u128) -> usize {
    ((key as u64) ^ ((key >> 64) as u64)) as usize
}

/// Replaces the journal's separators (tabs, newlines) and other control
/// characters with spaces so a record stays one line of six fields.
fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_control() { ' ' } else { c }).collect()
}

fn parse_line(line: &str) -> Option<(u128, CachedVerdict)> {
    let mut parts = line.splitn(6, '\t');
    if parts.next()? != "v1" {
        return None;
    }
    let key = u128::from_str_radix(parts.next()?, 16).ok()?;
    let verdict = parts.next()?.to_string();
    let steps = parts.next()?.parse().ok()?;
    let states = parts.next()?.parse().ok()?;
    let detail = parts.next()?.to_string();
    Some((key, CachedVerdict { verdict, detail, steps, states }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn verdict(tag: u64) -> CachedVerdict {
        CachedVerdict {
            verdict: "pass".to_string(),
            detail: format!("no error found #{tag}"),
            steps: tag,
            states: tag / 2,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kiss_serve_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_lookup_override_and_growth() {
        let mut cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        // Enough entries to force several growth rounds.
        for i in 0..500u64 {
            cache.insert(u128::from(i) << 7, verdict(i));
        }
        assert_eq!(cache.len(), 500);
        for i in 0..500u64 {
            assert_eq!(cache.lookup(u128::from(i) << 7), Some(&verdict(i)));
        }
        assert_eq!(cache.lookup(0xdead_beef), None);
        // A later insert for the same key overrides.
        cache.insert(0, verdict(999));
        assert_eq!(cache.len(), 500);
        assert_eq!(cache.lookup(0).unwrap().steps, 999);
    }

    #[test]
    fn journal_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut cache = ResultCache::open(&dir).unwrap();
            cache.insert(7, verdict(7));
            cache.insert(8, verdict(8));
            cache.insert(7, verdict(70)); // override, journaled twice
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(7).unwrap().steps, 70, "later record wins");
        assert_eq!(cache.lookup(8), Some(&verdict(8)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_garbage_journal_lines_are_skipped() {
        let dir = temp_dir("torn");
        {
            let mut cache = ResultCache::open(&dir).unwrap();
            cache.insert(1, verdict(1));
        }
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("complete garbage\n");
        text.push_str("v2\t0\tpass\t0\t0\tfuture version\n");
        text.push_str("v1\t00000000000000000000000000000002\tpass\t5"); // torn mid-record
        std::fs::write(&path, text).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(1), Some(&verdict(1)));
        assert_eq!(cache.lookup(2), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn details_with_separators_stay_one_record() {
        let dir = temp_dir("sanitize");
        let nasty = CachedVerdict {
            verdict: "error".to_string(),
            detail: "line one\nline\ttwo".to_string(),
            steps: 0,
            states: 0,
        };
        {
            let mut cache = ResultCache::open(&dir).unwrap();
            cache.insert(3, nasty);
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(3).unwrap().detail, "line one line two");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
