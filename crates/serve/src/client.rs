//! The client side: connect, submit a batch, collect responses.
//!
//! Batches are deduplicated before they hit the wire: entries with the
//! same content address ([`crate::protocol::Request::cache_key`]) are
//! submitted once and the shared verdict is fanned back out to every
//! entry. That keeps a corpus submission from paying for the same
//! program twice even against a cold server.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use crate::protocol::{decode_response, CacheStatus, Request, Response};

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                let reader = stream.try_clone()?;
                Ok((Box::new(reader), Box::new(stream)))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                let reader = stream.try_clone()?;
                Ok((Box::new(reader), Box::new(stream)))
            }
        }
    }
}

/// How one batch entry was answered, from the entry's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryCache {
    /// The server answered from its cache.
    Hit,
    /// The server executed the check.
    Miss,
    /// The entry never hit the wire: an earlier entry in the same batch
    /// had the same content address, and its verdict was shared.
    Deduped,
    /// Not a cacheable exchange (request-level error).
    None,
}

impl EntryCache {
    /// A stable lowercase name for display.
    pub fn as_str(self) -> &'static str {
        match self {
            EntryCache::Hit => "cache hit",
            EntryCache::Miss => "cache miss",
            EntryCache::Deduped => "dedup",
            EntryCache::None => "no cache",
        }
    }
}

/// One submitted batch, fanned back out to the caller's entries.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response per input entry, in input order, with the entry's
    /// original id restored.
    pub responses: Vec<Response>,
    /// How each entry was answered, parallel to `responses`.
    pub entry_cache: Vec<EntryCache>,
    /// Distinct requests actually sent over the wire.
    pub unique: usize,
    /// Server cache hits among the wire responses.
    pub hits: u64,
    /// Server cache misses among the wire responses.
    pub misses: u64,
}

/// Submits `requests` as one pipelined batch: dedup by content address,
/// send every unique frame, then collect responses (in any order) and
/// fan verdicts back out. Entry ids are preserved in the result even
/// though the wire uses positional ids.
pub fn submit_batch(endpoint: &Endpoint, requests: &[Request]) -> io::Result<BatchOutcome> {
    let (reader, mut writer) = endpoint.connect()?;

    // Dedup: first occurrence of a content address goes on the wire and
    // every entry remembers which wire slot answers it.
    let mut wire: Vec<Request> = Vec::new();
    let mut slot_of_key: HashMap<u128, usize> = HashMap::new();
    let mut slot_of_entry: Vec<usize> = Vec::with_capacity(requests.len());
    let mut deduped: Vec<bool> = Vec::with_capacity(requests.len());
    for request in requests {
        let key = request.cache_key();
        match slot_of_key.get(&key) {
            Some(&slot) => {
                slot_of_entry.push(slot);
                deduped.push(true);
            }
            None => {
                let slot = wire.len();
                slot_of_key.insert(key, slot);
                slot_of_entry.push(slot);
                deduped.push(false);
                let mut framed = request.clone();
                framed.id = format!("q{slot}");
                wire.push(framed);
            }
        }
    }

    for framed in &wire {
        writeln!(writer, "{}", framed.to_json())?;
    }
    writer.flush()?;

    let mut answers: Vec<Option<Response>> = vec![None; wire.len()];
    let mut outstanding = wire.len();
    let mut lines = BufReader::new(reader);
    let mut line = String::new();
    while outstanding > 0 {
        line.clear();
        if lines.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("server closed with {outstanding} responses outstanding"),
            ));
        }
        let text = line.trim_end_matches(['\n', '\r']);
        if text.is_empty() {
            continue;
        }
        let response = decode_response(text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response frame: {}", e.message()))
        })?;
        let slot = response
            .id
            .strip_prefix('q')
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n < wire.len())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown request id `{}`", response.id),
                )
            })?;
        if answers[slot].replace(response).is_none() {
            outstanding -= 1;
        }
    }

    let mut hits = 0u64;
    let mut misses = 0u64;
    for answer in answers.iter().flatten() {
        match answer.cache {
            CacheStatus::Hit => hits += 1,
            CacheStatus::Miss => misses += 1,
            CacheStatus::None => {}
        }
    }

    let mut responses = Vec::with_capacity(requests.len());
    let mut entry_cache = Vec::with_capacity(requests.len());
    for (i, request) in requests.iter().enumerate() {
        let answer = answers[slot_of_entry[i]].as_ref().expect("all slots answered");
        let mut response = answer.clone();
        response.id = request.id.clone();
        entry_cache.push(if deduped[i] {
            EntryCache::Deduped
        } else {
            match answer.cache {
                CacheStatus::Hit => EntryCache::Hit,
                CacheStatus::Miss => EntryCache::Miss,
                CacheStatus::None => EntryCache::None,
            }
        });
        responses.push(response);
    }

    Ok(BatchOutcome { responses, entry_cache, unique: wire.len(), hits, misses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server, ServeStats};
    use kiss_seq::{Budget, CancelToken};

    fn boot() -> (Endpoint, CancelToken, std::thread::JoinHandle<ServeStats>) {
        let cfg = ServeConfig {
            port: Some(0),
            jobs: 2,
            budget: Budget::small(),
            ..ServeConfig::default()
        };
        let server = Server::bind(cfg).unwrap();
        let port = server.local_port().unwrap();
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token).unwrap());
        (Endpoint::Tcp(format!("127.0.0.1:{port}")), shutdown, handle)
    }

    #[test]
    fn batch_dedups_and_fans_shared_verdicts_back_out() {
        let (endpoint, shutdown, handle) = boot();
        let src = "int x;\nvoid main() { x = 1; assert x == 1; }";
        let batch = vec![
            Request::check("first", src),
            Request::check("second", src), // same content address as `first`
            Request::check("third", "int y;\nvoid main() { y = 2; assert y == 2; }"),
        ];
        let outcome = submit_batch(&endpoint, &batch).unwrap();
        assert_eq!(outcome.unique, 2, "identical sources collapse to one wire request");
        assert_eq!(outcome.responses.len(), 3);
        assert_eq!(outcome.entry_cache[0], EntryCache::Miss);
        assert_eq!(outcome.entry_cache[1], EntryCache::Deduped);
        assert_eq!(outcome.entry_cache[2], EntryCache::Miss);
        assert_eq!(outcome.hits, 0);
        assert_eq!(outcome.misses, 2);
        // Ids come back as the caller named them; dedup shares verdicts.
        assert_eq!(outcome.responses[0].id, "first");
        assert_eq!(outcome.responses[1].id, "second");
        assert_eq!(outcome.responses[0].verdict, "pass");
        assert_eq!(outcome.responses[0].verdict, outcome.responses[1].verdict);
        assert_eq!(outcome.responses[0].detail, outcome.responses[1].detail);

        // A second submission of the same batch is all cache hits.
        let outcome = submit_batch(&endpoint, &batch).unwrap();
        assert_eq!(outcome.hits, 2);
        assert_eq!(outcome.misses, 0);
        assert_eq!(outcome.entry_cache[0], EntryCache::Hit);

        shutdown.cancel();
        let stats = handle.join().unwrap();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 2);
    }
}
