//! The client side: connect, submit a batch, collect responses.
//!
//! Batches are deduplicated before they hit the wire: entries with the
//! same content address ([`crate::protocol::Request::cache_key`]) are
//! submitted once and the shared verdict is fanned back out to every
//! entry. That keeps a corpus submission from paying for the same
//! program twice even against a cold server.
//!
//! Unique entries travel as pipelined `batch` frames by default — one
//! frame per batch (chunked under a soft byte budget) instead of one
//! line per request, which collapses the per-request write/syscall
//! round-trips against a warm server. Against a server that predates
//! batching, the typed `unknown op `batch`` rejection is detected and
//! the submission transparently falls back to single frames without
//! consuming a retry, so new clients interoperate with old servers.
//!
//! Submission is resilient by opt-in ([`SubmitOptions`]): a lost
//! connection, a silent server (per-request timeout), or a typed
//! `overloaded` shed triggers a reconnect with exponential backoff and
//! deterministic jitter, re-asking only the still-unanswered entries.
//! Retries are bounded and only ever re-send idempotent work: a shed
//! request was never executed (always safe), and cacheable checks are
//! pure functions of their content address — but a `no_cache` request
//! that may already have reached the server is *not* re-sent, because
//! the caller asked for exactly one fresh execution. Every retry emits
//! a `client_retry` event through `kiss-obs`.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use kiss_obs::{Event, Obs, TraceId};

use crate::protocol::{decode_response, Batch, CacheStatus, Request, Response, ServeSnapshot};

/// How long a resilient read blocks before re-checking its deadline.
const CLIENT_READ_POLL: Duration = Duration::from_millis(50);

/// Soft byte budget one batch frame aims under, comfortably inside the
/// server's hard [`crate::protocol::MAX_FRAME_BYTES`] cap even after
/// the frame's own envelope is added.
const BATCH_BYTE_BUDGET: usize = 256 * 1024;

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl Endpoint {
    /// Opens one connection, returning the read and write halves (the
    /// reader polls with a short timeout so resilient reads can check
    /// their deadline). Public so load harnesses can drive raw
    /// connections themselves.
    pub fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(CLIENT_READ_POLL))?;
                let reader = stream.try_clone()?;
                Ok((Box::new(reader), Box::new(stream)))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // Small request frames on a round-trip protocol: Nagle
                // would trade tens of milliseconds for nothing.
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(CLIENT_READ_POLL))?;
                let reader = stream.try_clone()?;
                Ok((Box::new(reader), Box::new(stream)))
            }
        }
    }
}

/// Client-side resilience policy for [`submit_batch_with`].
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Reconnect attempts after the first try (0 = the legacy
    /// fail-fast behaviour of [`submit_batch`]).
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter mixed into each backoff.
    pub jitter_seed: u64,
    /// Give up on an attempt when no response arrives for this long
    /// (`None` = wait forever, as a plain read would).
    pub request_timeout: Option<Duration>,
    /// Send pipelined `batch` frames (the default). A server that
    /// rejects them triggers a transparent single-frame fallback; set
    /// `false` to force single frames from the start.
    pub batch: bool,
    /// Observer receiving `client_retry` events.
    pub obs: Obs,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            retries: 0,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
            request_timeout: None,
            batch: true,
            obs: Obs::off(),
        }
    }
}

impl SubmitOptions {
    /// The wait before retry `attempt` (1-based): exponential backoff
    /// capped at `backoff_cap`, with "equal jitter" — half the window is
    /// guaranteed, half is a deterministic hash of `jitter_seed` and the
    /// attempt, so a fleet of clients sharing a policy but not a seed
    /// does not reconnect in lockstep (and a fixed seed replays exactly).
    fn backoff_before(&self, attempt: u32) -> Duration {
        let base = self
            .backoff
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.backoff_cap);
        let half = base / 2;
        if half.is_zero() {
            return base;
        }
        let jitter_ms = splitmix64(self.jitter_seed ^ u64::from(attempt))
            % (half.as_millis().max(1) as u64 + 1);
        half + Duration::from_millis(jitter_ms)
    }
}

/// The splitmix64 mixer: a full-period permutation of `u64`, good
/// enough to decorrelate jitter and cheap enough to keep this crate
/// dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How one batch entry was answered, from the entry's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryCache {
    /// The server answered from its cache.
    Hit,
    /// The server executed the check.
    Miss,
    /// The entry never hit the wire: an earlier entry in the same batch
    /// had the same content address, and its verdict was shared.
    Deduped,
    /// Not a cacheable exchange (request-level error).
    None,
}

impl EntryCache {
    /// A stable lowercase name for display.
    pub fn as_str(self) -> &'static str {
        match self {
            EntryCache::Hit => "cache hit",
            EntryCache::Miss => "cache miss",
            EntryCache::Deduped => "dedup",
            EntryCache::None => "no cache",
        }
    }
}

/// One submitted batch, fanned back out to the caller's entries.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response per input entry, in input order, with the entry's
    /// original id restored.
    pub responses: Vec<Response>,
    /// How each entry was answered, parallel to `responses`.
    pub entry_cache: Vec<EntryCache>,
    /// Distinct requests actually sent over the wire.
    pub unique: usize,
    /// Server cache hits among the wire responses.
    pub hits: u64,
    /// Server cache misses among the wire responses.
    pub misses: u64,
    /// Reconnect attempts the batch needed beyond the first.
    pub retries: u64,
}

/// Submits `requests` as one pipelined batch with the legacy fail-fast
/// policy (no retries, no timeout). See [`submit_batch_with`].
pub fn submit_batch(endpoint: &Endpoint, requests: &[Request]) -> io::Result<BatchOutcome> {
    submit_batch_with(endpoint, requests, &SubmitOptions::default())
}

/// What one wire attempt produced.
struct Attempt {
    /// `(slot, response)` pairs received before the attempt ended.
    answered: Vec<(usize, Response)>,
    /// Why the attempt ended early, if it did.
    failure: Option<AttemptFailure>,
}

enum AttemptFailure {
    /// The connection never opened; nothing was sent.
    Connect(io::Error),
    /// The connection died (or went silent past the request timeout)
    /// after the frames were sent.
    Lost(io::Error),
    /// The server rejected a `batch` frame as an unknown op — it
    /// predates batching. Nothing was executed; the caller retries the
    /// whole attempt with single frames, free of charge.
    BatchUnsupported,
}

/// Opens one connection, sends the given frames (pipelined as `batch`
/// frames when `batch` is set, one line per request otherwise), and
/// reads until every frame is answered, the peer closes, or the
/// per-request timeout expires with nothing arriving.
fn run_attempt(
    endpoint: &Endpoint,
    frames: &[(usize, Request)],
    timeout: Option<Duration>,
    batch: bool,
) -> Attempt {
    let mut answered = Vec::new();
    let fail = |failure| Attempt { answered: Vec::new(), failure: Some(failure) };
    let (reader, mut writer) = match endpoint.connect() {
        Ok(pair) => pair,
        Err(e) => return fail(AttemptFailure::Connect(e)),
    };
    if batch {
        // Chunk the requests into batch frames under a soft byte
        // budget, so a large corpus never builds a frame the server's
        // hard cap would reject. Each entry is serialized exactly once
        // (escaping the source dominates the cost) and the frames are
        // assembled from the parts with plain copies.
        let mut entries: Vec<String> = Vec::new();
        let mut frame_no = 0usize;
        let mut bytes = 0usize;
        let mut send = |entries: &mut Vec<String>, frame_no: &mut usize| -> io::Result<()> {
            let frame = Batch::frame_json(&format!("b{frame_no}"), entries);
            *frame_no += 1;
            entries.clear();
            writeln!(writer, "{frame}")
        };
        for (slot, request) in frames {
            let entry = request.to_json_as(&format!("q{slot}"));
            if !entries.is_empty() && bytes + entry.len() + 1 > BATCH_BYTE_BUDGET {
                if let Err(e) = send(&mut entries, &mut frame_no) {
                    return fail(AttemptFailure::Lost(e));
                }
                bytes = 0;
            }
            bytes += entry.len() + 1;
            entries.push(entry);
        }
        if !entries.is_empty() {
            if let Err(e) = send(&mut entries, &mut frame_no) {
                return fail(AttemptFailure::Lost(e));
            }
        }
    } else {
        for (slot, request) in frames {
            if let Err(e) = writeln!(writer, "{}", request.to_json_as(&format!("q{slot}"))) {
                return fail(AttemptFailure::Lost(e));
            }
        }
    }
    if let Err(e) = writer.flush() {
        return fail(AttemptFailure::Lost(e));
    }

    let wanted: HashMap<usize, ()> = frames.iter().map(|(slot, _)| (*slot, ())).collect();
    let mut outstanding = frames.len();
    let mut lines = BufReader::new(reader);
    let mut line = String::new();
    // The silence deadline restarts on every response: a batch of slow
    // checks is fine as long as the server keeps answering.
    let mut last_progress = Instant::now();
    while outstanding > 0 {
        line.clear();
        let n = loop {
            match lines.read_line(&mut line) {
                Ok(n) => break n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if let Some(limit) = timeout {
                        if last_progress.elapsed() >= limit {
                            return Attempt {
                                answered,
                                failure: Some(AttemptFailure::Lost(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    format!(
                                        "no response for {}ms with {outstanding} outstanding",
                                        limit.as_millis()
                                    ),
                                ))),
                            };
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Attempt { answered, failure: Some(AttemptFailure::Lost(e)) },
            }
        };
        if n == 0 {
            return Attempt {
                answered,
                failure: Some(AttemptFailure::Lost(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("server closed with {outstanding} responses outstanding"),
                ))),
            };
        }
        if !line.ends_with('\n') {
            // A torn frame: the peer died mid-response.
            return Attempt {
                answered,
                failure: Some(AttemptFailure::Lost(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ))),
            };
        }
        let text = line.trim_end_matches(['\n', '\r']);
        if text.is_empty() {
            continue;
        }
        let response = match decode_response(text) {
            Ok(response) => response,
            Err(e) => {
                return Attempt {
                    answered,
                    failure: Some(AttemptFailure::Lost(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad response frame: {}", e.message()),
                    ))),
                }
            }
        };
        let slot = response
            .id
            .strip_prefix('q')
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|slot| wanted.contains_key(slot));
        let Some(slot) = slot else {
            // A response that names no slot of ours. An old server
            // rejects a whole batch frame with one typed error (empty
            // or batch-frame id, `unknown op `batch`` in the detail):
            // nothing was executed, so the caller can re-run the whole
            // attempt with single frames.
            if batch && response.verdict == "error" && response.detail.contains("unknown op `batch`")
            {
                return Attempt { answered, failure: Some(AttemptFailure::BatchUnsupported) };
            }
            // Otherwise: a late answer from a previous connection's
            // server-side work leaking through a proxy, or a server
            // bug. Ignore it.
            continue;
        };
        last_progress = Instant::now();
        answered.push((slot, response));
        outstanding -= 1;
    }
    Attempt { answered, failure: None }
}

/// Submits `requests` as one pipelined batch: dedup by content address,
/// send every unique frame, then collect responses (in any order) and
/// fan verdicts back out. Entry ids are preserved in the result even
/// though the wire uses positional ids.
///
/// `opts` governs resilience: lost connections, silent servers, and
/// `overloaded` sheds are retried up to `opts.retries` times with
/// exponential backoff, re-sending only still-unanswered idempotent
/// entries (a shed entry is always idempotent to re-ask — it never
/// executed). When retries run out, remaining connection errors are
/// returned and remaining `overloaded` responses are handed to the
/// caller as final verdicts.
///
/// # Errors
///
/// Returns the last connection error once retries are exhausted, or a
/// decode error for a malformed response frame.
pub fn submit_batch_with(
    endpoint: &Endpoint,
    requests: &[Request],
    opts: &SubmitOptions,
) -> io::Result<BatchOutcome> {
    // Dedup: first occurrence of a content address goes on the wire and
    // every entry remembers which wire slot answers it.
    let mut wire: Vec<Request> = Vec::new();
    let mut slot_of_key: HashMap<u128, usize> = HashMap::new();
    let mut slot_of_entry: Vec<usize> = Vec::with_capacity(requests.len());
    let mut deduped: Vec<bool> = Vec::with_capacity(requests.len());
    for request in requests {
        let key = request.cache_key();
        match slot_of_key.get(&key) {
            Some(&slot) => {
                slot_of_entry.push(slot);
                deduped.push(true);
            }
            None => {
                let slot = wire.len();
                slot_of_key.insert(key, slot);
                slot_of_entry.push(slot);
                deduped.push(false);
                let mut request = request.clone();
                // Every wire request carries a trace id, so the server's
                // span stream is reconstructible per request. Minted once
                // per slot: a retried slot keeps its trace across
                // attempts.
                if request.trace.is_none() {
                    request.trace = TraceId::fresh();
                }
                wire.push(request);
            }
        }
    }

    let mut answers: Vec<Option<Response>> = vec![None; wire.len()];
    let mut pending: Vec<usize> = (0..wire.len()).collect();
    let mut retries_used = 0u64;
    let mut attempt_no = 0u32;
    let mut last_error: Option<io::Error> = None;
    let mut use_batches = opts.batch;

    while !pending.is_empty() {
        if attempt_no > 0 {
            if attempt_no > opts.retries {
                break;
            }
            let wait = opts.backoff_before(attempt_no);
            let reason = last_error
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "server overloaded".to_string());
            opts.obs.emit(|_| Event::ClientRetry {
                // The attempt about to start: the first retry is the
                // second attempt overall.
                attempt: u64::from(attempt_no) + 1,
                wait_ms: wait.as_millis() as u64,
                reason: reason.clone(),
            });
            retries_used += 1;
            std::thread::sleep(wait);
        }
        attempt_no += 1;

        let frames: Vec<(usize, Request)> =
            pending.iter().map(|&slot| (slot, wire[slot].clone())).collect();
        let attempt = run_attempt(endpoint, &frames, opts.request_timeout, use_batches);
        if matches!(attempt.failure, Some(AttemptFailure::BatchUnsupported)) {
            // The server predates batch frames and executed nothing.
            // Fall back to single frames and redo this attempt; the
            // downgrade is free — it consumes no retry and no backoff.
            use_batches = false;
            attempt_no -= 1;
            continue;
        }
        let mut next_pending: Vec<usize> = Vec::new();
        let mut shed_this_attempt = false;
        for (slot, response) in attempt.answered {
            if response.is_overloaded() && attempt_no <= opts.retries {
                // Shed before execution: always safe to re-ask. Keep the
                // overloaded response on file in case retries run out.
                shed_this_attempt = true;
                answers[slot] = Some(response);
                next_pending.push(slot);
            } else {
                answers[slot] = Some(response);
            }
        }
        let mut lost_after_send = false;
        match attempt.failure {
            None => last_error = None,
            // Handled above: the attempt restarts with single frames.
            Some(AttemptFailure::BatchUnsupported) => unreachable!(),
            Some(AttemptFailure::Connect(e)) => {
                // Nothing reached the server; every pending slot may be
                // re-sent, idempotent or not.
                last_error = Some(e);
                for &slot in &pending {
                    if answers[slot].is_none() {
                        next_pending.push(slot);
                    }
                }
            }
            Some(AttemptFailure::Lost(e)) => {
                last_error = Some(e);
                lost_after_send = true;
                for &slot in &pending {
                    if answers[slot].is_some() {
                        continue;
                    }
                    if wire[slot].no_cache {
                        // The server may already be executing (or have
                        // executed) this fresh-run request; re-sending
                        // would double-execute. Surface the loss instead.
                        answers[slot] = Some(Response::error(
                            wire[slot].id.clone(),
                            "connection lost after submit; no_cache request not retried",
                        ));
                    } else {
                        next_pending.push(slot);
                    }
                }
            }
        }
        if shed_this_attempt && !lost_after_send {
            last_error = None;
        }
        next_pending.sort_unstable();
        next_pending.dedup();
        pending = next_pending;
    }

    if !pending.is_empty() {
        // Out of retries. Shed slots keep their overloaded response as
        // the final answer; anything still unanswered is a hard error.
        if pending.iter().any(|&slot| answers[slot].is_none()) {
            return Err(last_error.unwrap_or_else(|| {
                io::Error::other("batch incomplete after retries")
            }));
        }
    }

    let mut hits = 0u64;
    let mut misses = 0u64;
    for answer in answers.iter().flatten() {
        match answer.cache {
            CacheStatus::Hit => hits += 1,
            CacheStatus::Miss => misses += 1,
            CacheStatus::None => {}
        }
    }

    let mut responses = Vec::with_capacity(requests.len());
    let mut entry_cache = Vec::with_capacity(requests.len());
    for (i, request) in requests.iter().enumerate() {
        let answer = answers[slot_of_entry[i]].as_ref().expect("all slots answered");
        let mut response = answer.clone();
        response.id = request.id.clone();
        entry_cache.push(if deduped[i] {
            EntryCache::Deduped
        } else {
            match answer.cache {
                CacheStatus::Hit => EntryCache::Hit,
                CacheStatus::Miss => EntryCache::Miss,
                CacheStatus::None => EntryCache::None,
            }
        });
        responses.push(response);
    }

    Ok(BatchOutcome {
        responses,
        entry_cache,
        unique: wire.len(),
        hits,
        misses,
        retries: retries_used,
    })
}

/// Sends one `status` ping and returns the server's answer (verdict
/// `ok`, detail `queue_depth=… cache_entries=… uptime_ms=…`).
///
/// # Errors
///
/// Returns the connection error, a timeout after `timeout` of silence,
/// or a decode error for a malformed response.
pub fn ping(endpoint: &Endpoint, timeout: Duration) -> io::Result<Response> {
    let frames = [(0usize, Request::status("ping"))];
    let mut attempt = run_attempt(endpoint, &frames, Some(timeout), false);
    match attempt.answered.pop() {
        Some((_, response)) => Ok(response),
        None => Err(match attempt.failure {
            Some(AttemptFailure::Connect(e)) | Some(AttemptFailure::Lost(e)) => e,
            _ => io::Error::other("ping received no response"),
        }),
    }
}

/// Sends one `metrics` scrape and parses the server's snapshot out of
/// the response detail.
///
/// # Errors
///
/// Returns the connection error, a timeout after `timeout` of silence,
/// or an `InvalidData` error when the detail is not a snapshot.
pub fn fetch_metrics(endpoint: &Endpoint, timeout: Duration) -> io::Result<ServeSnapshot> {
    let frames = [(0usize, Request::metrics("metrics"))];
    let mut attempt = run_attempt(endpoint, &frames, Some(timeout), false);
    match attempt.answered.pop() {
        Some((_, response)) => ServeSnapshot::parse(&response.detail).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed metrics snapshot: {}", response.detail),
            )
        }),
        None => Err(match attempt.failure {
            Some(AttemptFailure::Connect(e)) | Some(AttemptFailure::Lost(e)) => e,
            _ => io::Error::other("metrics scrape received no response"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server, ServeStats};
    use kiss_obs::sinks::ChannelSink;
    use kiss_seq::{Budget, CancelToken};
    use std::io::BufRead;
    use std::net::TcpListener;

    fn boot() -> (Endpoint, CancelToken, std::thread::JoinHandle<ServeStats>) {
        let cfg = ServeConfig {
            port: Some(0),
            jobs: 2,
            budget: Budget::small(),
            ..ServeConfig::default()
        };
        let server = Server::bind(cfg).unwrap();
        let port = server.local_port().unwrap();
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token).unwrap());
        (Endpoint::Tcp(format!("127.0.0.1:{port}")), shutdown, handle)
    }

    /// A scripted stand-in server: connection `i` reads
    /// `reads_per_conn[i]` request lines, answers with the scripted
    /// responses (`{}` placeholders get the request's wire id), then
    /// closes.
    fn scripted_server(
        scripts: Vec<Vec<Option<Response>>>,
    ) -> (Endpoint, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for script in scripts {
                let (stream, _) = listener.accept().unwrap();
                let mut lines = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for slot in script {
                    let mut line = String::new();
                    if lines.read_line(&mut line).unwrap() == 0 {
                        break;
                    }
                    let wire_id = line
                        .split("\"id\":\"")
                        .nth(1)
                        .and_then(|rest| rest.split('"').next())
                        .unwrap_or("")
                        .to_string();
                    if let Some(mut response) = slot {
                        response.id = wire_id;
                        writeln!(writer, "{}", response.to_json()).unwrap();
                    }
                    // None: swallow the request and close (torn server).
                }
            }
        });
        (Endpoint::Tcp(addr.to_string()), handle)
    }

    fn pass(detail: &str) -> Response {
        Response {
            id: String::new(),
            verdict: "pass".to_string(),
            detail: detail.to_string(),
            steps: 1,
            states: 1,
            cache: CacheStatus::Miss,
        }
    }

    #[test]
    fn batch_dedups_and_fans_shared_verdicts_back_out() {
        let (endpoint, shutdown, handle) = boot();
        let src = "int x;\nvoid main() { x = 1; assert x == 1; }";
        let batch = vec![
            Request::check("first", src),
            Request::check("second", src), // same content address as `first`
            Request::check("third", "int y;\nvoid main() { y = 2; assert y == 2; }"),
        ];
        let outcome = submit_batch(&endpoint, &batch).unwrap();
        assert_eq!(outcome.unique, 2, "identical sources collapse to one wire request");
        assert_eq!(outcome.responses.len(), 3);
        assert_eq!(outcome.entry_cache[0], EntryCache::Miss);
        assert_eq!(outcome.entry_cache[1], EntryCache::Deduped);
        assert_eq!(outcome.entry_cache[2], EntryCache::Miss);
        assert_eq!(outcome.hits, 0);
        assert_eq!(outcome.misses, 2);
        assert_eq!(outcome.retries, 0);
        // Ids come back as the caller named them; dedup shares verdicts.
        assert_eq!(outcome.responses[0].id, "first");
        assert_eq!(outcome.responses[1].id, "second");
        assert_eq!(outcome.responses[0].verdict, "pass");
        assert_eq!(outcome.responses[0].verdict, outcome.responses[1].verdict);
        assert_eq!(outcome.responses[0].detail, outcome.responses[1].detail);

        // A second submission of the same batch is all cache hits.
        let outcome = submit_batch(&endpoint, &batch).unwrap();
        assert_eq!(outcome.hits, 2);
        assert_eq!(outcome.misses, 0);
        assert_eq!(outcome.entry_cache[0], EntryCache::Hit);

        shutdown.cancel();
        let stats = handle.join().unwrap();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn ping_reports_queue_depth_and_uptime() {
        let (endpoint, shutdown, handle) = boot();
        let response = ping(&endpoint, Duration::from_secs(5)).unwrap();
        assert_eq!(response.verdict, "ok");
        assert!(response.detail.contains("queue_depth=0"), "{}", response.detail);
        assert!(response.detail.contains("cache_entries=0"), "{}", response.detail);
        assert!(response.detail.contains("uptime_ms="), "{}", response.detail);
        shutdown.cancel();
        // Status pings are control-plane: not in the request tally.
        assert_eq!(handle.join().unwrap().requests, 0);
    }

    #[test]
    fn metrics_scrape_agrees_with_the_request_tally() {
        let (endpoint, shutdown, handle) = boot();
        let batch = vec![Request::check("a", "int q;\nvoid main() { q = 5; assert q == 5; }")];
        submit_batch(&endpoint, &batch).unwrap(); // miss
        submit_batch(&endpoint, &batch).unwrap(); // hit
        let snap = fetch_metrics(&endpoint, Duration::from_secs(5)).unwrap();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.requests, snap.hits + snap.misses + snap.shed);
        assert_eq!(snap.hit_rate(), Some(0.5));
        assert_eq!(snap.cache_entries, 1);
        assert_eq!(snap.in_flight, 0, "no check is running during the scrape");
        assert!(snap.queue_peak >= 1, "the miss passed through the queue");
        let count = |name: &str| {
            snap.latency.iter().find(|(n, _)| n == name).map(|(_, h)| h.count())
        };
        assert_eq!(count("check"), Some(1));
        assert_eq!(count("hit"), Some(1));
        assert_eq!(snap.batches, 2, "each submission travelled as one batch frame");
        assert_eq!(snap.accepted, 3, "two submissions plus the scrape connection");
        shutdown.cancel();
        // The scrape is control-plane: not in the request tally.
        assert_eq!(handle.join().unwrap().requests, 2);
    }

    #[test]
    fn a_traced_request_emits_a_complete_span_tree() {
        let (tx, rx) = std::sync::mpsc::channel();
        let cfg = ServeConfig {
            port: Some(0),
            jobs: 1,
            budget: Budget::small(),
            obs: Obs::new(ChannelSink(tx)),
            ..ServeConfig::default()
        };
        let server = Server::bind(cfg).unwrap();
        let port = server.local_port().unwrap();
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token).unwrap());
        let endpoint = Endpoint::Tcp(format!("127.0.0.1:{port}"));
        let mut traced = Request::check("traced", "void main() { skip; }");
        traced.trace = TraceId(0xabcd);
        submit_batch(&endpoint, std::slice::from_ref(&traced)).unwrap();
        shutdown.cancel();
        handle.join().unwrap();

        let hex = TraceId(0xabcd).to_hex();
        // (span id -> (name, parent)) for the client's trace only.
        let mut opened: HashMap<u64, (String, u64)> = HashMap::new();
        let mut closed: Vec<u64> = Vec::new();
        let mut root_request = None;
        for event in rx.try_iter() {
            match event {
                Event::SpanOpen { trace, span, parent, name, request } if trace == hex => {
                    if parent == 0 {
                        root_request = request;
                    }
                    opened.insert(span, (name, parent));
                }
                Event::SpanClose { trace, span, .. } if trace == hex => closed.push(span),
                _ => {}
            }
        }
        let by_name = |name: &str| {
            opened
                .iter()
                .find(|(_, (n, _))| n == name)
                .map(|(&span, &(_, parent))| (span, parent))
                .unwrap_or_else(|| panic!("no `{name}` span in {opened:?}"))
        };
        let (recv, recv_parent) = by_name("recv");
        let (queued, queued_parent) = by_name("queued");
        let (check, check_parent) = by_name("check");
        let (_reply, reply_parent) = by_name("reply");
        assert_eq!(recv_parent, 0, "recv is the root");
        assert_eq!(root_request.as_deref(), Some("q0"), "the root names its request");
        assert_eq!(queued_parent, recv);
        assert_eq!(check_parent, queued);
        assert_eq!(reply_parent, check);
        // The engine's phase spans hang off the check span.
        for phase in ["transform", "lower", "explore"] {
            let (_, parent) = by_name(phase);
            assert_eq!(parent, check, "`{phase}` must parent under `check`");
        }
        // Balance: every open closed exactly once.
        closed.sort_unstable();
        let mut all: Vec<u64> = opened.keys().copied().collect();
        all.sort_unstable();
        assert_eq!(closed, all, "span opens and closes must pair up");
    }

    #[test]
    fn a_dropped_connection_is_retried_and_recovers() {
        // Connection 1 swallows the request and closes; connection 2
        // answers. One client_retry event, final verdict intact.
        let (endpoint, server) =
            scripted_server(vec![vec![None], vec![Some(pass("recovered"))]]);
        let (tx, rx) = std::sync::mpsc::channel();
        let opts = SubmitOptions {
            retries: 2,
            backoff: Duration::from_millis(2),
            obs: Obs::new(ChannelSink(tx)),
            // The scripted server answers with whatever id it read
            // first, which for a batch frame would be the frame id.
            batch: false,
            ..SubmitOptions::default()
        };
        let batch = [Request::check("job", "void main() { skip; }")];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        server.join().unwrap();
        assert_eq!(outcome.retries, 1);
        assert_eq!(outcome.responses[0].verdict, "pass");
        assert_eq!(outcome.responses[0].detail, "recovered");
        assert_eq!(outcome.responses[0].id, "job");
        let events: Vec<Event> = rx.try_iter().collect();
        assert_eq!(events.len(), 1);
        let Event::ClientRetry { attempt, reason, .. } = &events[0] else {
            panic!("expected a client_retry event, got {events:?}")
        };
        assert_eq!(*attempt, 2, "the first retry is the second attempt");
        assert!(reason.contains("outstanding") || reason.contains("closed"), "{reason}");
    }

    #[test]
    fn overloaded_responses_are_retried_until_the_budget_runs_out() {
        // Both connections shed: with retries=1 the second overloaded
        // answer is final and surfaces to the caller as a verdict.
        let (endpoint, server) = scripted_server(vec![
            vec![Some(Response::overloaded(String::new(), 7))],
            vec![Some(Response::overloaded(String::new(), 7))],
        ]);
        let opts = SubmitOptions {
            retries: 1,
            backoff: Duration::from_millis(2),
            batch: false,
            ..SubmitOptions::default()
        };
        let batch = [Request::check("job", "void main() { skip; }")];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        server.join().unwrap();
        assert_eq!(outcome.retries, 1);
        assert_eq!(outcome.responses[0].verdict, "overloaded");
        assert!(outcome.responses[0].detail.contains("queue full"));
    }

    #[test]
    fn no_cache_requests_are_not_resent_after_a_mid_flight_loss() {
        // The connection dies after the frames were sent; the answered
        // cacheable entry stays answered and the swallowed no_cache
        // entry must NOT be re-executed — so no reconnect happens at
        // all, and the loss surfaces as that entry's error verdict.
        let (endpoint, server) =
            scripted_server(vec![vec![Some(pass("first-run")), None]]);
        let opts = SubmitOptions {
            retries: 2,
            backoff: Duration::from_millis(2),
            batch: false,
            ..SubmitOptions::default()
        };
        let mut fresh = Request::check("fresh", "void main() { skip; }");
        fresh.no_cache = true;
        let batch = [
            Request::check("cacheable", "int z;\nvoid main() { z = 3; }"),
            fresh,
        ];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        server.join().unwrap();
        // Wire order matches batch order: the cacheable entry was
        // answered before the drop, the no_cache entry was swallowed.
        assert_eq!(outcome.responses[0].verdict, "pass");
        assert_eq!(outcome.responses[0].detail, "first-run");
        assert_eq!(outcome.responses[1].verdict, "error");
        assert!(
            outcome.responses[1].detail.contains("no_cache request not retried"),
            "{}",
            outcome.responses[1].detail
        );
        assert_eq!(outcome.retries, 0, "nothing retryable was left pending");
    }

    #[test]
    fn batch_frames_fall_back_to_single_frames_against_an_old_server() {
        // Connection 1 plays an old server: it rejects the batch frame
        // with the typed unknown-op error. Connection 2 then receives
        // single frames and answers. The downgrade costs no retry, so
        // even a zero-retry policy completes.
        let old_server_rejection = Response {
            id: String::new(),
            verdict: "error".to_string(),
            detail: "malformed frame: unknown op `batch`".to_string(),
            steps: 0,
            states: 0,
            cache: CacheStatus::None,
        };
        let (endpoint, server) = scripted_server(vec![
            vec![Some(old_server_rejection)],
            vec![Some(pass("single-framed"))],
        ]);
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        let opts = SubmitOptions {
            retries: 0,
            obs: Obs::new(ChannelSink(tx)),
            ..SubmitOptions::default()
        };
        let batch = [Request::check("job", "void main() { skip; }")];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        server.join().unwrap();
        assert_eq!(outcome.responses[0].verdict, "pass");
        assert_eq!(outcome.responses[0].detail, "single-framed");
        assert_eq!(outcome.retries, 0, "the fallback must not consume a retry");
        assert!(rx.try_iter().next().is_none(), "the fallback must not emit client_retry");
    }

    #[test]
    fn old_servers_reject_ltl_requests_with_a_named_error_the_client_reports() {
        // An old server predating liveness decodes `op:"ltl"` as an
        // unknown op and answers a typed error naming it. The client
        // must surface that response verbatim — no retry (the server
        // answered), no crash, no conflation with a transport failure.
        let old_server_rejection = Response {
            id: String::new(),
            verdict: "error".to_string(),
            detail: "malformed frame: unknown op `ltl`".to_string(),
            steps: 0,
            states: 0,
            cache: CacheStatus::None,
        };
        let (endpoint, server) = scripted_server(vec![vec![Some(old_server_rejection)]]);
        let opts = SubmitOptions { batch: false, ..SubmitOptions::default() };
        let batch =
            [Request::ltl("live", "int g; void main() { g = 1; }", "F (g == 1)")];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        server.join().unwrap();
        assert_eq!(outcome.responses[0].verdict, "error");
        assert!(
            outcome.responses[0].detail.contains("unknown op `ltl`"),
            "{}",
            outcome.responses[0].detail
        );
        assert_eq!(outcome.retries, 0, "an answered error is final, not retryable");
    }

    #[test]
    fn ltl_submissions_cache_separately_from_plain_checks() {
        // One source, two ops, against a live server: the plain check
        // must not warm the liveness request (distinct cache keys), and
        // a repeated liveness request must hit.
        let (endpoint, shutdown, handle) = boot();
        let src = "int locked;\nvoid worker() { locked = 0; }\n\
                   void main() { locked = 1; async worker(); while (locked == 1) { skip; } }";
        let check = Request::check("plain", src);
        let ltl = Request::ltl("live", src, "G (locked -> F !locked)");
        let cold = submit_batch(&endpoint, &[check, ltl.clone()]).unwrap();
        assert_eq!(cold.responses[0].verdict, "pass");
        assert_eq!(cold.responses[1].verdict, "pass");
        assert_eq!(cold.misses, 2, "check and ltl are distinct cache entries");
        assert_eq!(cold.hits, 0);
        let warm = submit_batch(&endpoint, &[ltl]).unwrap();
        assert_eq!(warm.hits, 1, "the repeated liveness request must hit");
        assert_eq!(warm.responses[0].cache, CacheStatus::Hit);
        // Warm answers are byte-identical to cold ones.
        assert_eq!(warm.responses[0].verdict, cold.responses[1].verdict);
        assert_eq!(warm.responses[0].detail, cold.responses[1].detail);
        shutdown.cancel();
        handle.join().unwrap();
    }

    #[test]
    fn single_frame_mode_still_works_against_a_live_server() {
        let (endpoint, shutdown, handle) = boot();
        let opts = SubmitOptions { batch: false, ..SubmitOptions::default() };
        let batch = [Request::check("plain", "int w;\nvoid main() { w = 9; assert w == 9; }")];
        let outcome = submit_batch_with(&endpoint, &batch, &opts).unwrap();
        assert_eq!(outcome.responses[0].verdict, "pass");
        let snap = fetch_metrics(&endpoint, Duration::from_secs(5)).unwrap();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.batches, 0, "no batch frame was sent");
        shutdown.cancel();
        handle.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let opts = SubmitOptions {
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(400),
            jitter_seed: 42,
            ..SubmitOptions::default()
        };
        let same = SubmitOptions { ..opts.clone() };
        for attempt in 1..=6 {
            let a = opts.backoff_before(attempt);
            assert_eq!(a, same.backoff_before(attempt), "same seed, same schedule");
            // Equal jitter: between base/2 and base, capped.
            let base = Duration::from_millis(100 * (1 << (attempt - 1)).min(4));
            assert!(a >= base / 2, "attempt {attempt}: {a:?} < {:?}", base / 2);
            assert!(a <= base, "attempt {attempt}: {a:?} > {base:?}");
        }
        let other = SubmitOptions { jitter_seed: 43, ..opts.clone() };
        let schedules_differ =
            (1..=6).any(|n| opts.backoff_before(n) != other.backoff_before(n));
        assert!(schedules_differ, "different seeds should jitter differently");
    }
}
