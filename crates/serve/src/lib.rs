//! kiss-serve: a persistent check service for the KISS checker.
//!
//! The checker's verdicts are deterministic functions of (program
//! source, operation, engine, store, `MAX`, budget) — which makes them
//! perfectly cacheable. This crate turns that observation into a
//! daemon: a socket server ([`server`]) executes checks under the
//! `kiss-core` supervisor and remembers every verdict in a
//! content-addressed result cache ([`cache`]) whose journal survives
//! restarts. Clients speak newline-delimited JSON ([`protocol`]) and
//! can submit deduplicated batches ([`client`]).
//!
//! ```text
//! client ──ndjson──▶ reader ──▶ cache? ──hit──▶ writer ──▶ client
//!                                 │miss
//!                                 ▼
//!                           bounded queue ──▶ workers (supervised)
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CachedVerdict, ResultCache};
pub use client::{submit_batch, BatchOutcome, Endpoint, EntryCache};
pub use protocol::{
    decode_request, decode_response, CacheStatus, FrameError, Op, Request, Response,
    MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, ServeStats, Server};
