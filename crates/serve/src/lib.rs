//! kiss-serve: a persistent check service for the KISS checker.
//!
//! The checker's verdicts are deterministic functions of (program
//! source, operation, engine, store, `MAX`, budget) — which makes them
//! perfectly cacheable. This crate turns that observation into a
//! daemon: a socket server ([`server`]) executes checks under the
//! `kiss-core` supervisor and remembers every verdict in a
//! content-addressed result cache ([`cache`]) whose journal survives
//! restarts. Clients speak newline-delimited JSON ([`protocol`]) and
//! can submit deduplicated batches ([`client`]).
//!
//! ```text
//! client ──ndjson──▶ reader ──▶ cache? ──hit──▶ writer ──▶ client
//!                                 │miss
//!                                 ▼
//!                           bounded queue ──▶ workers (supervised)
//! ```
//!
//! The service is hardened against the usual long-running-daemon
//! failures and testable under injected ones (`kiss-fault`):
//!
//! * the journal checksums every record, skips torn or corrupted lines
//!   on replay, and is compacted periodically and at drain;
//! * queue admission is bounded-wait — an overloaded server sheds with
//!   a typed `overloaded` response instead of stalling its readers;
//! * idle connections with no in-flight work are closed after an
//!   optional deadline, and a `status` ping reports queue depth, cache
//!   size, and uptime without touching the request accounting;
//! * clients reconnect with capped exponential backoff plus
//!   deterministic jitter, re-sending only idempotent unanswered work.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CachedVerdict, ReplayStats, ResultCache, SHARD_COUNT};
pub use client::{
    fetch_metrics, ping, submit_batch, submit_batch_with, BatchOutcome, Endpoint, EntryCache,
    SubmitOptions,
};
pub use protocol::{
    decode_frame, decode_request, decode_response, Batch, CacheStatus, Frame, FrameError, Op,
    Request, Response, ServeSnapshot, MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, ServeStats, Server};
