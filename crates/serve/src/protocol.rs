//! The wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line. Responses may arrive
//! out of request order (cache hits answer immediately while misses
//! queue), so clients correlate by `id`. The encoding reuses
//! `kiss-obs`'s hand-rolled JSON — the protocol has no dependency the
//! workspace does not already carry.
//!
//! A request frame:
//!
//! ```json
//! {"id":"q0","op":"race","target":"Ext.field","source":"int g; ...",
//!  "engine":"explicit","store":"cow","max_ts":0,
//!  "max_steps":50000,"max_states":8000,"timeout_ms":2000,"no_cache":true}
//! ```
//!
//! `id`, `op`, and `source` (plus `target` for `op:"race"`) are
//! required; everything else defaults. A response frame:
//!
//! ```json
//! {"id":"q0","verdict":"race","detail":"...","steps":123,"states":45,
//!  "cache":"miss"}
//! ```
//!
//! Responses deliberately carry no timing fields: a warm answer is
//! byte-identical to the cold answer it was cached from.
//!
//! ## Batch frames
//!
//! A client holding many requests may pipeline them as one frame
//! instead of one line each:
//!
//! ```json
//! {"id":"b0","op":"batch","entries":[{"id":"q0",...},{"id":"q1",...}]}
//! ```
//!
//! Each entry is a complete request object with its own `id`; the
//! server answers with ordinary single-response lines correlated by
//! entry id (out of order, exactly as if the entries had arrived as
//! separate frames), so batching changes framing only — never
//! verdicts, caching, or accounting. The batch `id` appears on the
//! wire only when the batch frame itself is rejected. Entries are
//! restricted to the checking ops (`check`, `race`, `ltl`);
//! control-plane ops stay single frames. An old server that predates batching
//! answers the frame with a single `unknown op `batch`` error, which
//! updated clients detect and fall back to single frames.

use kiss_core::checker::Engine;
use kiss_obs::json::{quoted, Json};
use kiss_obs::{Histogram, TraceId};
use kiss_seq::StoreKind;

/// Hard cap on one frame's byte length. Driver sources are tens of
/// kilobytes; anything past this is a protocol error, not a program.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// What a request asks the checker to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Check the program's user assertions.
    Check,
    /// Check for races on a `"global"` or `"Struct.field"` target.
    Race {
        /// The race target spec.
        target: String,
    },
    /// Check an LTL liveness formula over the program's globals. An
    /// old server that predates liveness answers with a single
    /// ``unknown op `ltl` `` error, which clients surface verbatim.
    Ltl {
        /// The formula text, e.g. `G (locked -> F !locked)`. Senders
        /// should pretty-print a parsed formula so the two spellings
        /// of one formula share a cache entry.
        formula: String,
    },
    /// Control-plane ping: answer immediately with queue depth, cache
    /// size, and uptime. Needs no `source`, never queues, never counts
    /// in the request/cache accounting.
    Status,
    /// Control-plane metrics scrape: answer immediately with a
    /// [`ServeSnapshot`] in the response `detail`. Like `status`, it
    /// needs no `source`, never queues, and never counts in the
    /// request/cache accounting.
    Metrics,
}

/// One check request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: String,
    /// What to check.
    pub op: Op,
    /// The KISS-C program text.
    pub source: String,
    /// Sequential engine to run.
    pub engine: Engine,
    /// State-store implementation.
    pub store: StoreKind,
    /// The `MAX` coverage bound.
    pub max_ts: usize,
    /// Step-budget override (server default when absent).
    pub max_steps: Option<u64>,
    /// State-budget override.
    pub max_states: Option<u64>,
    /// Wall-clock deadline override, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Skip the cache lookup (the verdict is still stored).
    pub no_cache: bool,
    /// Worker threads exploring a single check (BFS + cow store only).
    /// A throughput knob, never a semantics knob: results are
    /// byte-identical to a serial run, so it is excluded from the
    /// cache key — a warm answer from a serial run satisfies a
    /// parallel request and vice versa.
    pub explore_jobs: usize,
    /// Client-minted trace id threading this request's spans through
    /// the server's event stream. [`TraceId::NONE`] (the default) lets
    /// the server mint one. Like `id`, a transport concern — excluded
    /// from the cache key.
    pub trace: TraceId,
}

impl Request {
    /// A `check` request with every knob at its default.
    pub fn check(id: impl Into<String>, source: impl Into<String>) -> Request {
        Request {
            id: id.into(),
            op: Op::Check,
            source: source.into(),
            engine: Engine::default(),
            store: StoreKind::default(),
            max_ts: 0,
            max_steps: None,
            max_states: None,
            timeout_ms: None,
            no_cache: false,
            explore_jobs: 1,
            trace: TraceId::NONE,
        }
    }

    /// A `race` request with every knob at its default.
    pub fn race(
        id: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
    ) -> Request {
        Request { op: Op::Race { target: target.into() }, ..Request::check(id, source) }
    }

    /// An `ltl` liveness request with every knob at its default.
    pub fn ltl(
        id: impl Into<String>,
        source: impl Into<String>,
        formula: impl Into<String>,
    ) -> Request {
        Request { op: Op::Ltl { formula: formula.into() }, ..Request::check(id, source) }
    }

    /// A `status` ping (no source).
    pub fn status(id: impl Into<String>) -> Request {
        Request { op: Op::Status, ..Request::check(id, "") }
    }

    /// A `metrics` scrape (no source).
    pub fn metrics(id: impl Into<String>) -> Request {
        Request { op: Op::Metrics, ..Request::check(id, "") }
    }

    /// The content address: a 128-bit fingerprint over every field that
    /// determines the verdict — source text, operation and target,
    /// engine, store, `MAX`, and the budget overrides. The `id` and
    /// `no_cache` fields are transport concerns and excluded, and so
    /// is `explore_jobs` — parallel exploration is byte-identical to
    /// serial, so the verdict does not depend on it.
    pub fn cache_key(&self) -> u128 {
        // The formula rides the target slot; the op name alone keeps an
        // `ltl` request distinct from a `race` on an equal spelling.
        let (op, target) = match &self.op {
            Op::Check => ("check", ""),
            Op::Race { target } => ("race", target.as_str()),
            Op::Ltl { formula } => ("ltl", formula.as_str()),
            Op::Status => ("status", ""),
            Op::Metrics => ("metrics", ""),
        };
        let (hi, lo) = kiss_seq::config::fingerprint_of(&(
            op,
            target,
            self.source.as_str(),
            self.engine.name(),
            self.store.name(),
            self.max_ts,
            self.max_steps,
            self.max_states,
            self.timeout_ms,
        ));
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// One-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_as(&self.id)
    }

    /// [`Request::to_json`] with `id` on the wire instead of
    /// `self.id`. Senders rewrite correlation ids per attempt; doing
    /// it here spares them cloning the (large) source just to change a
    /// tag.
    pub fn to_json_as(&self, id: &str) -> String {
        let mut out = String::with_capacity(self.source.len() + 160);
        out.push_str(&format!("{{\"id\":{}", quoted(id)));
        match &self.op {
            Op::Check => out.push_str(",\"op\":\"check\""),
            Op::Race { target } => {
                out.push_str(&format!(",\"op\":\"race\",\"target\":{}", quoted(target)));
            }
            Op::Ltl { formula } => {
                out.push_str(&format!(",\"op\":\"ltl\",\"formula\":{}", quoted(formula)));
            }
            Op::Status => out.push_str(",\"op\":\"status\""),
            Op::Metrics => out.push_str(",\"op\":\"metrics\""),
        }
        out.push_str(&format!(
            ",\"source\":{},\"engine\":{},\"store\":{},\"max_ts\":{}",
            quoted(&self.source),
            quoted(self.engine.name()),
            quoted(self.store.name()),
            self.max_ts,
        ));
        for (name, value) in [
            ("max_steps", self.max_steps),
            ("max_states", self.max_states),
            ("timeout_ms", self.timeout_ms),
        ] {
            if let Some(v) = value {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
        }
        if self.no_cache {
            out.push_str(",\"no_cache\":true");
        }
        if self.explore_jobs > 1 {
            out.push_str(&format!(",\"explore_jobs\":{}", self.explore_jobs));
        }
        if !self.trace.is_none() {
            out.push_str(&format!(",\"trace\":\"{}\"", self.trace.to_hex()));
        }
        out.push('}');
        out
    }
}

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Answered from the result cache.
    Hit,
    /// Executed (and, when cacheable, stored).
    Miss,
    /// Not a cacheable exchange (protocol errors, setup failures).
    None,
}

impl CacheStatus {
    /// A stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::None => "none",
        }
    }

    /// Parses [`CacheStatus::as_str`] output.
    pub fn parse(s: &str) -> Option<CacheStatus> {
        match s {
            "hit" => Some(CacheStatus::Hit),
            "miss" => Some(CacheStatus::Miss),
            "none" => Some(CacheStatus::None),
            _ => None,
        }
    }
}

/// One check response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id (empty when the request line did not parse far
    /// enough to have one).
    pub id: String,
    /// `pass`, `assertion`, `race`, `inconclusive`, `runtime_error`,
    /// `transform_failed`, `crashed`, `error` (request-level failure:
    /// malformed frame, parse error, unknown target), `overloaded`
    /// (typed load shed — safe to retry), or `ok` (status pings).
    pub verdict: String,
    /// Human-readable detail. Deterministic — no wall times, so a warm
    /// answer is byte-identical to the cold one.
    pub detail: String,
    /// Steps the final attempt executed (0 for cache-free errors).
    pub steps: u64,
    /// Distinct states the final attempt recorded.
    pub states: u64,
    /// Whether the cache answered.
    pub cache: CacheStatus,
}

impl Response {
    /// A request-level failure response.
    pub fn error(id: impl Into<String>, detail: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            verdict: "error".to_string(),
            detail: detail.into(),
            steps: 0,
            states: 0,
            cache: CacheStatus::None,
        }
    }

    /// The typed load-shedding response: the queue stayed full for the
    /// whole admission wait. Clients may safely retry — the request was
    /// never executed.
    pub fn overloaded(id: impl Into<String>, queue_depth: u64) -> Response {
        Response {
            id: id.into(),
            verdict: "overloaded".to_string(),
            detail: format!("server overloaded: queue full at depth {queue_depth}"),
            steps: 0,
            states: 0,
            cache: CacheStatus::None,
        }
    }

    /// Whether this response is the typed overload rejection.
    pub fn is_overloaded(&self) -> bool {
        self.verdict == "overloaded"
    }

    /// `true` when the verdict reports a program error (the exchanges
    /// that map to exit code 1).
    pub fn found_error(&self) -> bool {
        matches!(self.verdict.as_str(), "assertion" | "race" | "runtime_error")
    }

    /// One-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"verdict\":{},\"detail\":{},\"steps\":{},\"states\":{},\"cache\":{}}}",
            quoted(&self.id),
            quoted(&self.verdict),
            quoted(&self.detail),
            self.steps,
            self.states,
            quoted(self.cache.as_str()),
        )
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The offending length.
        bytes: usize,
    },
    /// The line is not a well-formed frame.
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl FrameError {
    /// The message sent back in an error response's `detail`.
    pub fn message(&self) -> String {
        match self {
            FrameError::Oversized { bytes } => {
                format!("oversized frame: {bytes} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
            FrameError::Malformed { reason } => format!("malformed frame: {reason}"),
        }
    }
}

fn malformed(reason: impl Into<String>) -> FrameError {
    FrameError::Malformed { reason: reason.into() }
}

/// A batch of pipelined requests travelling as one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The batch frame's own id — used only when the frame itself is
    /// rejected (entries answer under their own ids).
    pub id: String,
    /// The pipelined requests, checking ops only.
    pub entries: Vec<Request>,
}

impl Batch {
    /// One-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        let parts: Vec<String> = self.entries.iter().map(Request::to_json).collect();
        Batch::frame_json(&self.id, &parts)
    }

    /// Assembles the batch wire frame from already-serialized entry
    /// frames (each the [`Request::to_json`] of one request). Escaping
    /// request sources dominates serialization cost, so a sender that
    /// needs entry sizes for chunking can serialize each entry once
    /// and assemble frames with plain copies.
    pub fn frame_json(id: &str, entry_jsons: &[String]) -> String {
        let payload: usize = entry_jsons.iter().map(|e| e.len() + 1).sum();
        let mut out = String::with_capacity(40 + id.len() + payload);
        out.push_str("{\"id\":");
        out.push_str(&quoted(id));
        out.push_str(",\"op\":\"batch\",\"entries\":[");
        for (i, entry) in entry_jsons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(entry);
        }
        out.push_str("]}");
        out
    }
}

/// One decoded inbound frame: a single request or a pipelined batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An ordinary one-request frame.
    Single(Request),
    /// A pipelined batch frame.
    Batch(Batch),
}

/// Decodes one inbound line as either frame shape. Single-request
/// lines decode exactly as [`decode_request`] does, so a batch-aware
/// server interoperates with old single-frame clients unchanged.
pub fn decode_frame(line: &str) -> Result<Frame, FrameError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { bytes: line.len() });
    }
    let v = Json::parse(line).ok_or_else(|| malformed("not valid JSON"))?;
    if v.as_obj().is_none() {
        return Err(malformed("frame is not a JSON object"));
    }
    if v.get("op").and_then(Json::as_str) != Some("batch") {
        return Ok(Frame::Single(request_from_value(&v)?));
    }
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing `id`"))?
        .to_string();
    let entries_json = v
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("op `batch` needs an `entries` array"))?;
    if entries_json.is_empty() {
        return Err(malformed("batch has no entries"));
    }
    let mut entries = Vec::with_capacity(entries_json.len());
    for entry in entries_json {
        if entry.as_obj().is_none() {
            return Err(malformed("batch entry is not a JSON object"));
        }
        let request = request_from_value(entry)?;
        if !matches!(request.op, Op::Check | Op::Race { .. } | Op::Ltl { .. }) {
            return Err(malformed("batch entries must be check, race, or ltl ops"));
        }
        entries.push(request);
    }
    Ok(Frame::Batch(Batch { id, entries }))
}

/// Decodes one request line. Batch frames are rejected here with
/// `unknown op `batch`` — the exact answer a pre-batch server gives,
/// which updated clients key their single-frame fallback on.
pub fn decode_request(line: &str) -> Result<Request, FrameError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { bytes: line.len() });
    }
    let v = Json::parse(line).ok_or_else(|| malformed("not valid JSON"))?;
    if v.as_obj().is_none() {
        return Err(malformed("frame is not a JSON object"));
    }
    request_from_value(&v)
}

fn request_from_value(v: &Json) -> Result<Request, FrameError> {
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing `id`"))?
        .to_string();
    let op = match v.get("op").and_then(Json::as_str) {
        Some("check") => Op::Check,
        Some("race") => {
            let target = v
                .get("target")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed("op `race` needs a `target`"))?;
            Op::Race { target: target.to_string() }
        }
        Some("ltl") => {
            let formula = v
                .get("formula")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed("op `ltl` needs a `formula`"))?;
            Op::Ltl { formula: formula.to_string() }
        }
        Some("status") => Op::Status,
        Some("metrics") => Op::Metrics,
        Some(other) => return Err(malformed(format!("unknown op `{other}`"))),
        None => return Err(malformed("missing `op`")),
    };
    // Control-plane ops carry no program; every checking op must.
    let source = match v.get("source").and_then(Json::as_str) {
        Some(s) => s.to_string(),
        None if op == Op::Status || op == Op::Metrics => String::new(),
        None => return Err(malformed("missing `source`")),
    };
    let engine = match v.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(s) => Engine::parse(s).ok_or_else(|| malformed(format!("unknown engine `{s}`")))?,
    };
    let store = match v.get("store").and_then(Json::as_str) {
        None => StoreKind::default(),
        Some(s) => StoreKind::parse(s).ok_or_else(|| malformed(format!("unknown store `{s}`")))?,
    };
    let num = |name: &str| -> Result<Option<u64>, FrameError> {
        match v.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(n) => {
                Ok(Some(n.as_u64().ok_or_else(|| {
                    malformed(format!("`{name}` must be a non-negative number"))
                })?))
            }
        }
    };
    Ok(Request {
        id,
        op,
        source,
        engine,
        store,
        max_ts: num("max_ts")?.unwrap_or(0) as usize,
        max_steps: num("max_steps")?,
        max_states: num("max_states")?,
        timeout_ms: num("timeout_ms")?,
        no_cache: matches!(v.get("no_cache"), Some(Json::Bool(true))),
        explore_jobs: match num("explore_jobs")? {
            None | Some(0) => 1,
            Some(n) => n as usize,
        },
        // Tolerant: an unparsable trace degrades to "server mints one",
        // never to a rejected frame.
        trace: v
            .get("trace")
            .and_then(Json::as_str)
            .and_then(TraceId::from_hex)
            .unwrap_or(TraceId::NONE),
    })
}

/// Decodes one response line.
pub fn decode_response(line: &str) -> Result<Response, FrameError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { bytes: line.len() });
    }
    let v = Json::parse(line).ok_or_else(|| malformed("not valid JSON"))?;
    let field = |name: &str| -> Result<String, FrameError> {
        Ok(v.get(name)
            .and_then(Json::as_str)
            .ok_or_else(|| malformed(format!("missing `{name}`")))?
            .to_string())
    };
    let cache = match v.get("cache").and_then(Json::as_str) {
        None => CacheStatus::None,
        Some(s) => {
            CacheStatus::parse(s).ok_or_else(|| malformed(format!("unknown cache state `{s}`")))?
        }
    };
    Ok(Response {
        id: field("id")?,
        verdict: field("verdict")?,
        detail: v.get("detail").and_then(Json::as_str).unwrap_or("").to_string(),
        steps: v.get("steps").and_then(Json::as_u64).unwrap_or(0),
        states: v.get("states").and_then(Json::as_u64).unwrap_or(0),
        cache,
    })
}

/// A point-in-time view of a running server, answered inline by the
/// `metrics` op (the snapshot travels in the response `detail`).
///
/// Every field is an integer — no floats cross the wire, so a snapshot
/// is byte-stable and diffable. Derived ratios (hit rate) are computed
/// by the consumer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeSnapshot {
    /// Milliseconds since the server started accepting.
    pub uptime_ms: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: u64,
    /// High-water mark of the queue depth since start.
    pub queue_peak: u64,
    /// Workers executing a check right now.
    pub in_flight: u64,
    /// Client connections open right now.
    pub conns_open: u64,
    /// High-water mark of open connections since start.
    pub conns_peak: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// Admissions that found the queue full and had to wait (the
    /// accept-backlog pressure signal).
    pub admission_waits: u64,
    /// Pipelined batch frames received since start.
    pub batches: u64,
    /// Live entries in the result cache.
    pub cache_entries: u64,
    /// Lines in the cache journal (live + dead + garbage).
    pub journal_records: u64,
    /// Approximate cache journal size on disk, in bytes.
    pub journal_bytes: u64,
    /// Journal compaction passes completed since start.
    pub compactions: u64,
    /// Independently locked cache partitions.
    pub cache_shards: u64,
    /// Cache shard-lock acquisitions since start.
    pub shard_acquires: u64,
    /// Acquisitions that found the shard lock held and blocked — near
    /// zero when sharding has removed the contention.
    pub shard_contended: u64,
    /// Check/race requests accepted (control-plane ops excluded).
    pub requests: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that executed (and, when cacheable, stored).
    pub misses: u64,
    /// Requests shed with the typed `overloaded` response.
    pub shed: u64,
    /// Injected faults fired since start (kiss-fault).
    pub faults: u64,
    /// Per-operation latency histograms (milliseconds), keyed by a
    /// stable lowercase name (`check`, `hit`), sorted by name.
    pub latency: Vec<(String, Histogram)>,
}

impl ServeSnapshot {
    /// Cache hit rate over the answered (non-shed) requests, or `None`
    /// before the first answer.
    pub fn hit_rate(&self) -> Option<f64> {
        let answered = self.hits + self.misses;
        (answered > 0).then(|| self.hits as f64 / answered as f64)
    }

    /// One-line JSON encoding (no trailing newline). Keys are emitted
    /// in a fixed order, so equal snapshots encode identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"uptime_ms\":{},\"queue_depth\":{},\"queue_peak\":{},\"in_flight\":{}",
            self.uptime_ms, self.queue_depth, self.queue_peak, self.in_flight,
        ));
        out.push_str(&format!(
            ",\"conns_open\":{},\"conns_peak\":{},\"accepted\":{},\"admission_waits\":{},\"batches\":{}",
            self.conns_open, self.conns_peak, self.accepted, self.admission_waits, self.batches,
        ));
        out.push_str(&format!(
            ",\"cache_entries\":{},\"journal_records\":{},\"journal_bytes\":{},\"compactions\":{}",
            self.cache_entries, self.journal_records, self.journal_bytes, self.compactions,
        ));
        out.push_str(&format!(
            ",\"cache_shards\":{},\"shard_acquires\":{},\"shard_contended\":{}",
            self.cache_shards, self.shard_acquires, self.shard_contended,
        ));
        out.push_str(&format!(
            ",\"requests\":{},\"hits\":{},\"misses\":{},\"shed\":{},\"faults\":{}",
            self.requests, self.hits, self.misses, self.shed, self.faults,
        ));
        out.push_str(",\"latency\":{");
        for (i, (name, hist)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", quoted(name), hist.to_json()));
        }
        out.push_str("}}");
        out
    }

    /// Decodes [`ServeSnapshot::to_json`] output (absent fields default
    /// to zero, so older servers stay scrapeable).
    pub fn parse(text: &str) -> Option<ServeSnapshot> {
        let v = Json::parse(text)?;
        v.as_obj()?;
        let num = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
        let mut latency = Vec::new();
        if let Some(map) = v.get("latency").and_then(Json::as_obj) {
            for (name, value) in map {
                latency.push((name.clone(), Histogram::from_value(value)?));
            }
        }
        Some(ServeSnapshot {
            uptime_ms: num("uptime_ms"),
            queue_depth: num("queue_depth"),
            queue_peak: num("queue_peak"),
            in_flight: num("in_flight"),
            conns_open: num("conns_open"),
            conns_peak: num("conns_peak"),
            accepted: num("accepted"),
            admission_waits: num("admission_waits"),
            batches: num("batches"),
            cache_entries: num("cache_entries"),
            journal_records: num("journal_records"),
            journal_bytes: num("journal_bytes"),
            compactions: num("compactions"),
            cache_shards: num("cache_shards"),
            shard_acquires: num("shard_acquires"),
            shard_contended: num("shard_contended"),
            requests: num("requests"),
            hits: num("hits"),
            misses: num("misses"),
            shed: num("shed"),
            faults: num("faults"),
            latency,
        })
    }

    /// A fixed-width human rendering (the body of `kissc top`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "uptime    : {:.1}s\n",
            self.uptime_ms as f64 / 1000.0
        ));
        out.push_str(&format!(
            "queue     : depth={} peak={} in_flight={}\n",
            self.queue_depth, self.queue_peak, self.in_flight,
        ));
        out.push_str(&format!(
            "conns     : open={} peak={} accepted={} admission-waits={}\n",
            self.conns_open, self.conns_peak, self.accepted, self.admission_waits,
        ));
        let rate = match self.hit_rate() {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        };
        out.push_str(&format!(
            "requests  : total={} hits={} misses={} shed={} batches={} hit-rate={rate}\n",
            self.requests, self.hits, self.misses, self.shed, self.batches,
        ));
        out.push_str(&format!(
            "cache     : entries={} journal={}B/{} records compactions={}\n",
            self.cache_entries, self.journal_bytes, self.journal_records, self.compactions,
        ));
        out.push_str(&format!(
            "shards    : n={} acquires={} contended={}\n",
            self.cache_shards, self.shard_acquires, self.shard_contended,
        ));
        out.push_str(&format!("faults    : fired={}\n", self.faults));
        for (name, hist) in &self.latency {
            let q = |p| {
                hist.quantile(p).map_or("-".to_string(), |ms| format!("{ms}ms"))
            };
            out.push_str(&format!(
                "lat {:<6}: n={} p50={} p90={} p99={}\n",
                name,
                hist.count(),
                q(50),
                q(90),
                q(99),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_all_fields() {
        let req = Request {
            id: "q\"7".to_string(),
            op: Op::Race { target: "Ext.field".to_string() },
            source: "int g;\nvoid main() { skip; }".to_string(),
            engine: Engine::Bfs,
            store: StoreKind::Legacy,
            max_ts: 2,
            max_steps: Some(50_000),
            max_states: Some(8_000),
            timeout_ms: Some(2_000),
            no_cache: true,
            explore_jobs: 4,
            trace: TraceId(0x1234_5678_9abc_def0),
        };
        assert_eq!(decode_request(&req.to_json()), Ok(req));
    }

    #[test]
    fn request_defaults_fill_in() {
        let req = decode_request(r#"{"id":"a","op":"check","source":"void main() { skip; }"}"#)
            .unwrap();
        assert_eq!(req.engine, Engine::Explicit);
        assert_eq!(req.store, StoreKind::default());
        assert_eq!(req.max_ts, 0);
        assert_eq!(req.max_steps, None);
        assert!(!req.no_cache);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "not valid JSON"),
            ("[1,2]", "not a JSON object"),
            (r#"{"op":"check","source":"x"}"#, "missing `id`"),
            (r#"{"id":"a","source":"x"}"#, "missing `op`"),
            (r#"{"id":"a","op":"zap","source":"x"}"#, "unknown op"),
            (r#"{"id":"a","op":"race","source":"x"}"#, "needs a `target`"),
            (r#"{"id":"a","op":"check"}"#, "missing `source`"),
            (r#"{"id":"a","op":"check","source":"x","engine":"warp"}"#, "unknown engine"),
            (r#"{"id":"a","op":"check","source":"x","store":"zipdb"}"#, "unknown store"),
            (r#"{"id":"a","op":"check","source":"x","max_steps":"ten"}"#, "non-negative"),
        ] {
            let err = decode_request(line).unwrap_err();
            assert!(err.message().contains(needle), "{line} -> {}", err.message());
        }
    }

    #[test]
    fn unknown_enum_values_name_the_offending_value() {
        // The error detail must quote the value the client sent, so a
        // misconfigured corpus run is debuggable from the response alone.
        for (line, offending) in [
            (r#"{"id":"a","op":"zap","source":"x"}"#, "`zap`"),
            (r#"{"id":"a","op":"check","source":"x","engine":"warp"}"#, "`warp`"),
            (r#"{"id":"a","op":"check","source":"x","store":"zipdb"}"#, "`zipdb`"),
        ] {
            let err = decode_request(line).unwrap_err();
            assert!(err.message().contains(offending), "{line} -> {}", err.message());
        }
    }

    #[test]
    fn ltl_requests_round_trip_and_need_a_formula() {
        let req = Request::ltl("q4", "int locked; void main() { skip; }", "G (locked -> F !locked)");
        let line = req.to_json();
        assert!(line.contains("\"op\":\"ltl\""), "{line}");
        assert!(line.contains("\"formula\":"), "{line}");
        assert_eq!(decode_request(&line), Ok(req));
        let err = decode_request(r#"{"id":"a","op":"ltl","source":"x"}"#).unwrap_err();
        assert!(err.message().contains("needs a `formula`"), "{}", err.message());
        // Checking op: a program is still required.
        assert!(decode_request(r#"{"id":"a","op":"ltl","formula":"G p"}"#).is_err());
    }

    #[test]
    fn ltl_cache_keys_never_conflate_with_plain_checks() {
        // One source, three ops: a cached reachability verdict must
        // never answer a liveness request (or vice versa), and two
        // different formulas must not share an entry.
        let src = "int locked; void main() { locked = 1; }";
        let check = Request::check("a", src);
        let ltl = Request::ltl("a", src, "G (locked -> F !locked)");
        let other = Request::ltl("a", src, "F (locked == 1)");
        assert_ne!(check.cache_key(), ltl.cache_key());
        assert_ne!(ltl.cache_key(), other.cache_key());
        // A race target spelled like a formula is still a distinct op.
        let race = Request::race("a", src, "G (locked -> F !locked)");
        assert_ne!(race.cache_key(), ltl.cache_key());
        // Transport fields stay excluded, exactly as for check/race.
        let mut same = ltl.clone();
        same.id = "other-id".to_string();
        same.no_cache = true;
        same.explore_jobs = 8;
        assert_eq!(ltl.cache_key(), same.cache_key());
    }

    #[test]
    fn batches_carry_ltl_entries() {
        let batch = Batch {
            id: "b1".to_string(),
            entries: vec![
                Request::check("q0", "void main() { skip; }"),
                Request::ltl("q1", "int g; void main() { g = 1; }", "F (g == 1)"),
            ],
        };
        assert_eq!(decode_frame(&batch.to_json()), Ok(Frame::Batch(batch)));
    }

    #[test]
    fn status_requests_need_no_source() {
        let req = decode_request(r#"{"id":"ping","op":"status"}"#).unwrap();
        assert_eq!(req.op, Op::Status);
        assert_eq!(req.source, "");
        let round = Request::status("ping");
        assert_eq!(decode_request(&round.to_json()), Ok(round));
        // Checking ops still require a program.
        assert!(decode_request(r#"{"id":"a","op":"check"}"#).is_err());
    }

    #[test]
    fn metrics_requests_need_no_source() {
        let req = decode_request(r#"{"id":"m0","op":"metrics"}"#).unwrap();
        assert_eq!(req.op, Op::Metrics);
        assert_eq!(req.source, "");
        let round = Request::metrics("m0");
        assert_eq!(decode_request(&round.to_json()), Ok(round));
    }

    #[test]
    fn explore_jobs_defaults_and_round_trips() {
        // Absent from the frame at the default, so old servers see
        // byte-identical requests from updated clients.
        let base = Request::check("a", "void main() { skip; }");
        assert!(!base.to_json().contains("explore_jobs"));
        assert_eq!(decode_request(&base.to_json()).unwrap().explore_jobs, 1);
        // A zero on the wire degrades to serial, never to an error.
        let line = r#"{"id":"a","op":"check","source":"x","explore_jobs":0}"#;
        assert_eq!(decode_request(line).unwrap().explore_jobs, 1);
        let mut req = base;
        req.explore_jobs = 4;
        assert!(req.to_json().contains("\"explore_jobs\":4"));
        assert_eq!(decode_request(&req.to_json()), Ok(req));
    }

    #[test]
    fn trace_ids_round_trip_and_tolerate_garbage() {
        let mut req = Request::check("a", "void main() { skip; }");
        // Absent from the frame when unset.
        assert!(!req.to_json().contains("trace"));
        req.trace = TraceId(0xdead_beef_cafe_f00d);
        assert!(req.to_json().contains("\"trace\":\"deadbeefcafef00d\""));
        assert_eq!(decode_request(&req.to_json()), Ok(req.clone()));
        // Trace is transport, not content: the key ignores it.
        let mut untraced = req.clone();
        untraced.trace = TraceId::NONE;
        assert_eq!(req.cache_key(), untraced.cache_key());
        // A mangled trace degrades to NONE, never to a rejected frame.
        let line = r#"{"id":"a","op":"check","source":"x","trace":"zz"}"#;
        assert_eq!(decode_request(line).unwrap().trace, TraceId::NONE);
    }

    #[test]
    fn serve_snapshot_round_trips_and_renders() {
        let snap = ServeSnapshot {
            uptime_ms: 12_500,
            queue_depth: 3,
            queue_peak: 17,
            in_flight: 2,
            conns_open: 5,
            conns_peak: 9,
            accepted: 31,
            admission_waits: 4,
            batches: 6,
            cache_shards: 16,
            shard_acquires: 210,
            shard_contended: 1,
            cache_entries: 40,
            journal_records: 55,
            journal_bytes: 4_096,
            compactions: 1,
            requests: 100,
            hits: 60,
            misses: 39,
            shed: 1,
            faults: 2,
            latency: vec![
                ("check".to_string(), Histogram::from_samples([5, 9, 120])),
                ("hit".to_string(), Histogram::from_samples([0, 1])),
            ],
        };
        assert_eq!(ServeSnapshot::parse(&snap.to_json()), Some(snap.clone()));
        assert_eq!(snap.hit_rate(), Some(60.0 / 99.0));
        let view = snap.render();
        assert!(view.contains("depth=3 peak=17 in_flight=2"), "{view}");
        assert!(view.contains("open=5 peak=9 accepted=31 admission-waits=4"), "{view}");
        assert!(view.contains("total=100 hits=60 misses=39 shed=1 batches=6"), "{view}");
        assert!(view.contains("n=16 acquires=210 contended=1"), "{view}");
        assert!(view.contains("lat check : n=3"), "{view}");
        // Absent fields default; an empty object parses to zeroes.
        let empty = ServeSnapshot::parse("{}").unwrap();
        assert_eq!(empty, ServeSnapshot::default());
        assert_eq!(empty.hit_rate(), None);
        assert!(ServeSnapshot::parse("[1]").is_none());
    }

    #[test]
    fn overloaded_responses_are_typed() {
        let resp = Response::overloaded("q3", 64);
        assert!(resp.is_overloaded());
        assert!(!resp.found_error());
        assert!(resp.detail.contains("depth 64"));
        let back = decode_response(&resp.to_json()).unwrap();
        assert_eq!(back, resp);
        assert!(!Response::error("q3", "boom").is_overloaded());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let line = "x".repeat(MAX_FRAME_BYTES + 1);
        let err = decode_request(&line).unwrap_err();
        assert_eq!(err, FrameError::Oversized { bytes: MAX_FRAME_BYTES + 1 });
        assert!(err.message().contains("oversized"));
        assert!(decode_response(&line).is_err());
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: "q0".to_string(),
            verdict: "race".to_string(),
            detail: "race: write at 3:4 vs write at 7:8".to_string(),
            steps: 123,
            states: 45,
            cache: CacheStatus::Hit,
        };
        assert_eq!(decode_response(&resp.to_json()), Ok(resp));
        let err = Response::error("", "malformed frame: not valid JSON");
        assert_eq!(decode_response(&err.to_json()), Ok(err));
    }

    #[test]
    fn batch_frames_round_trip() {
        let batch = Batch {
            id: "b7".to_string(),
            entries: vec![
                Request::check("q0", "void main() { skip; }"),
                Request::race("q1", "int g;\nvoid main() { g = 1; }", "g"),
            ],
        };
        let line = batch.to_json();
        assert_eq!(decode_frame(&line), Ok(Frame::Batch(batch)));
        // Single-request lines decode through decode_frame unchanged.
        let single = Request::check("q9", "void main() { skip; }");
        assert_eq!(decode_frame(&single.to_json()), Ok(Frame::Single(single)));
    }

    #[test]
    fn batch_frames_reject_bad_shapes() {
        for (line, needle) in [
            (r#"{"op":"batch","entries":[]}"#.to_string(), "missing `id`"),
            (r#"{"id":"b0","op":"batch"}"#.to_string(), "needs an `entries` array"),
            (r#"{"id":"b0","op":"batch","entries":[]}"#.to_string(), "no entries"),
            (r#"{"id":"b0","op":"batch","entries":[7]}"#.to_string(), "not a JSON object"),
            (
                r#"{"id":"b0","op":"batch","entries":[{"id":"q0","op":"check"}]}"#.to_string(),
                "missing `source`",
            ),
            (
                r#"{"id":"b0","op":"batch","entries":[{"id":"q0","op":"status"}]}"#.to_string(),
                "must be check, race, or ltl",
            ),
        ] {
            let err = decode_frame(&line).unwrap_err();
            assert!(err.message().contains(needle), "{line} -> {}", err.message());
        }
    }

    #[test]
    fn old_request_decoder_rejects_batches_with_the_fallback_marker() {
        // The single-frame decoder must answer a batch exactly like a
        // pre-batch server would: clients key their fallback on this.
        let batch = Batch {
            id: "b0".to_string(),
            entries: vec![Request::check("q0", "void main() { skip; }")],
        };
        let err = decode_request(&batch.to_json()).unwrap_err();
        assert!(err.message().contains("unknown op `batch`"), "{}", err.message());
    }

    #[test]
    fn cache_key_tracks_semantic_fields_only() {
        let base = Request::check("a", "void main() { skip; }");
        let mut same = base.clone();
        same.id = "completely-different".to_string();
        same.no_cache = true;
        // Parallel exploration is byte-identical to serial, so the
        // worker count must not fragment the cache.
        same.explore_jobs = 8;
        assert_eq!(base.cache_key(), same.cache_key());
        let mut other = base.clone();
        other.engine = Engine::Bfs;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut bounded = base.clone();
        bounded.max_steps = Some(10);
        assert_ne!(base.cache_key(), bounded.cache_key());
        assert_ne!(
            Request::check("a", "x").cache_key(),
            Request::race("a", "x", "g").cache_key()
        );
    }
}

