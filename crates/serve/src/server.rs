//! The check server: listeners, a bounded job queue, and a worker pool
//! executing checks under the `kiss-core` supervisor.
//!
//! Connections are line-oriented ([`crate::protocol`]). Each accepted
//! connection gets a reader thread and a writer thread; parsed requests
//! either answer immediately from the result cache or enqueue a job for
//! the worker pool, so responses can arrive out of request order
//! (clients correlate by `id`). Shutdown is a [`CancelToken`]: accept
//! loops and readers stop, queued jobs drain, and `run` returns the
//! tally.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kiss_core::{Kiss, KissOutcome, RaceTarget, Supervised, Supervisor};
use kiss_obs::{Event, Obs};
use kiss_seq::{BoundReason, Budget, CancelToken};

use crate::cache::{CachedVerdict, ResultCache};
use crate::protocol::{decode_request, CacheStatus, FrameError, Op, Request, Response, MAX_FRAME_BYTES};

/// How long a connection reader blocks before re-checking shutdown.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long an accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Server configuration.
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: Option<PathBuf>,
    /// Loopback TCP port to listen on (0 picks a free one; see
    /// [`Server::local_port`]).
    pub port: Option<u16>,
    /// Worker threads executing checks.
    pub jobs: usize,
    /// Bounded queue depth; pushes block when full (backpressure).
    pub max_queue: usize,
    /// Journal directory for the result cache (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Default check budget (requests may override axes).
    pub budget: Budget,
    /// Supervisor retry ladder depth.
    pub retries: u32,
    /// Observer receiving server and check events.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: None,
            port: None,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            max_queue: 64,
            cache_dir: None,
            budget: Budget::generous(),
            retries: 0,
            obs: Obs::off(),
        }
    }
}

/// The request tally a finished server run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Well-formed requests received.
    pub requests: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests executed (includes `no_cache` bypasses).
    pub cache_misses: u64,
}

/// One queued execution.
struct Job {
    request: Request,
    key: u128,
    received: Instant,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded job queue: blocking push (backpressure toward clients),
/// blocking pop (workers park when idle).
struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl Queue {
    fn new(cap: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks while the queue is full; `Err` returns the job when the
    /// queue has been closed.
    fn push(&self, job: Job) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        while state.jobs.len() >= self.cap && !state.closed {
            state = self.not_full.wait(state).expect("queue lock");
        }
        if state.closed {
            return Err(Box::new(job));
        }
        state.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while the queue is empty; `None` once it is closed *and*
    /// drained, so pending jobs still complete during shutdown.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> u64 {
        self.state.lock().expect("queue lock").jobs.len() as u64
    }
}

/// One accepted connection, unix or TCP.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Accepted streams inherit the listener's non-blocking flag; flip
    /// them back to blocking with a short read timeout so readers poll
    /// the shutdown token.
    fn prepare(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Atomic mirrors of [`ServeStats`], shared across handler threads.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A bound, not-yet-running server.
pub struct Server {
    cfg: ServeConfig,
    listeners: Vec<Listener>,
    local_port: Option<u16>,
}

impl Server {
    /// Binds the configured endpoints. A stale unix socket file is
    /// removed first; at least one of `socket`/`port` must be set.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let mut listeners = Vec::new();
        let mut local_port = None;
        if let Some(path) = &cfg.socket {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                listeners.push(Listener::Unix(listener));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform; use --port",
                ));
            }
        }
        if let Some(port) = cfg.port {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            local_port = Some(listener.local_addr()?.port());
            listener.set_nonblocking(true)?;
            listeners.push(Listener::Tcp(listener));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs a --socket path or a --port",
            ));
        }
        Ok(Server { cfg, listeners, local_port })
    }

    /// The bound TCP port, when a TCP listener was requested (resolves
    /// `--port 0`).
    pub fn local_port(&self) -> Option<u16> {
        self.local_port
    }

    /// Serves until `shutdown` is cancelled: accept loops stop, active
    /// connections finish their in-flight requests, queued jobs drain,
    /// and the tally is returned.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<ServeStats> {
        let cache = Mutex::new(match &self.cfg.cache_dir {
            Some(dir) => ResultCache::open(dir)?,
            None => ResultCache::in_memory(),
        });
        let queue = Queue::new(self.cfg.max_queue);
        let counters = Counters::default();
        let active = AtomicUsize::new(0);
        let label_seq = AtomicU64::new(0);
        let cfg = &self.cfg;

        std::thread::scope(|s| {
            for _ in 0..cfg.jobs.max(1) {
                s.spawn(|| worker_loop(&queue, &cache, cfg, &label_seq));
            }
            for listener in &self.listeners {
                let (active, counters, queue, cache) = (&active, &counters, &queue, &cache);
                s.spawn(move || {
                    while !shutdown.is_cancelled() {
                        match listener.accept() {
                            Ok(stream) => {
                                active.fetch_add(1, Ordering::SeqCst);
                                s.spawn(move || {
                                    handle_connection(
                                        stream, s, queue, cache, counters, cfg, shutdown,
                                    );
                                    active.fetch_sub(1, Ordering::SeqCst);
                                });
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            // Transient accept failures (e.g. the peer
                            // vanished mid-handshake) are not fatal.
                            Err(_) => std::thread::sleep(ACCEPT_POLL),
                        }
                    }
                });
            }
            // The scope body itself coordinates the drain: once shutdown
            // is requested and every connection handler has finished
            // submitting, close the queue so workers exit after the
            // backlog empties.
            while !shutdown.is_cancelled() {
                std::thread::sleep(ACCEPT_POLL);
            }
            while active.load(Ordering::SeqCst) != 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            queue.close();
        });

        #[cfg(unix)]
        if let Some(path) = &self.cfg.socket {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeStats {
            requests: counters.requests.load(Ordering::SeqCst),
            cache_hits: counters.hits.load(Ordering::SeqCst),
            cache_misses: counters.misses.load(Ordering::SeqCst),
        })
    }
}

/// Reads frames off one connection until EOF or shutdown. Writes go
/// through a dedicated thread so cache hits answer while earlier misses
/// are still executing.
fn handle_connection<'scope>(
    stream: Stream,
    scope: &'scope std::thread::Scope<'scope, '_>,
    queue: &'scope Queue,
    cache: &'scope Mutex<ResultCache>,
    counters: &'scope Counters,
    cfg: &'scope ServeConfig,
    shutdown: &'scope CancelToken,
) {
    if stream.prepare().is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Response>();
    scope.spawn(move || {
        for response in rx {
            if writeln!(writer, "{}", response.to_json()).and_then(|()| writer.flush()).is_err() {
                break;
            }
        }
    });

    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // Bytes discarded from a frame that outgrew MAX_FRAME_BYTES before
    // its newline arrived; the frame is answered with one error once the
    // newline shows up.
    let mut discarded = 0usize;
    'read: while !shutdown.is_cancelled() {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let rest = buf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut buf, rest);
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if discarded > 0 {
                let err = FrameError::Oversized { bytes: discarded + line.len() };
                if tx.send(Response::error("", err.message())).is_err() {
                    break 'read;
                }
                discarded = 0;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let text = String::from_utf8_lossy(&line);
            handle_line(&text, &tx, queue, cache, counters, cfg);
        }
        // No newline yet: a frame past the cap can never become valid,
        // so stop buffering it.
        if buf.len() > MAX_FRAME_BYTES {
            discarded += buf.len();
            buf.clear();
        }
    }
}

/// Decodes and answers one frame: error, cache hit, or enqueue.
fn handle_line(
    line: &str,
    tx: &mpsc::Sender<Response>,
    queue: &Queue,
    cache: &Mutex<ResultCache>,
    counters: &Counters,
    cfg: &ServeConfig,
) {
    let request = match decode_request(line) {
        Ok(request) => request,
        Err(e) => {
            let _ = tx.send(Response::error("", e.message()));
            return;
        }
    };
    counters.requests.fetch_add(1, Ordering::SeqCst);
    cfg.obs.emit(|_| Event::RequestReceived {
        request: request.id.clone(),
        queue_depth: queue.depth(),
    });
    let key = request.cache_key();
    if !request.no_cache {
        let cached = cache.lock().expect("cache lock").lookup(key).cloned();
        if let Some(v) = cached {
            counters.hits.fetch_add(1, Ordering::SeqCst);
            cfg.obs.emit(|_| Event::CacheHit { request: request.id.clone() });
            cfg.obs.emit(|_| Event::RequestDone {
                request: request.id.clone(),
                verdict: v.verdict.clone(),
                wall_ms: 0,
                queue_depth: queue.depth(),
            });
            let _ = tx.send(Response {
                id: request.id,
                verdict: v.verdict,
                detail: v.detail,
                steps: v.steps,
                states: v.states,
                cache: CacheStatus::Hit,
            });
            return;
        }
    }
    counters.misses.fetch_add(1, Ordering::SeqCst);
    cfg.obs.emit(|_| Event::CacheMiss { request: request.id.clone() });
    let job = Job { key, received: Instant::now(), reply: tx.clone(), request };
    if let Err(job) = queue.push(job) {
        let _ = job.reply.send(Response::error(job.request.id, "server is draining"));
    }
}

/// Pops jobs until the queue closes: execute, cache, answer.
fn worker_loop(queue: &Queue, cache: &Mutex<ResultCache>, cfg: &ServeConfig, seq: &AtomicU64) {
    while let Some(job) = queue.pop() {
        let (verdict, cacheable) = execute(&job.request, cfg, seq);
        if cacheable {
            cache.lock().expect("cache lock").insert(job.key, verdict.clone());
        }
        cfg.obs.emit(|_| Event::RequestDone {
            request: job.request.id.clone(),
            verdict: verdict.verdict.clone(),
            wall_ms: job.received.elapsed().as_millis() as u64,
            queue_depth: queue.depth(),
        });
        let _ = job.reply.send(Response {
            id: job.request.id,
            verdict: verdict.verdict,
            detail: verdict.detail,
            steps: verdict.steps,
            states: verdict.states,
            cache: CacheStatus::Miss,
        });
    }
}

/// Runs one request under supervision. The second return value says
/// whether the verdict may enter the cache: verdicts that depend on
/// wall-clock or server state (deadline/cancellation inconclusives,
/// crashes, setup failures) must not.
fn execute(request: &Request, cfg: &ServeConfig, seq: &AtomicU64) -> (CachedVerdict, bool) {
    let error = |detail: String| CachedVerdict {
        verdict: "error".to_string(),
        detail,
        steps: 0,
        states: 0,
    };
    let program = match kiss_lang::parse_and_lower(&request.source) {
        Ok(program) => program,
        Err(e) => return (error(format!("parse: {e}")), false),
    };
    let target = match &request.op {
        Op::Check => None,
        Op::Race { target } => match RaceTarget::resolve(&program, target) {
            Some(resolved) => Some(resolved),
            None => return (error(format!("unknown race target `{target}`")), false),
        },
    };
    let mut budget = cfg.budget;
    if let Some(steps) = request.max_steps {
        budget.max_steps = steps;
    }
    if let Some(states) = request.max_states {
        budget.max_states = states as usize;
    }
    if let Some(ms) = request.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    // A process-unique label keeps check lifecycle events distinct even
    // when clients reuse request ids across submissions.
    let label = format!("{}#{}", request.id, seq.fetch_add(1, Ordering::Relaxed));
    // A fresh token, deliberately NOT the shutdown token: in-flight
    // checks run to completion during a drain.
    let supervisor = Supervisor::new(budget)
        .with_retries(cfg.retries)
        .with_cancel(CancelToken::new())
        .with_observer(cfg.obs.clone());
    let run = supervisor.run_scoped(&label, |budget, cancel, obs| {
        let kiss = Kiss::new()
            .with_max_ts(request.max_ts)
            .with_engine(request.engine)
            .with_store(request.store)
            .with_budget(budget)
            .with_cancel(cancel)
            .with_observer(obs.clone())
            .with_validation(false);
        match target {
            Some(target) => kiss.check_race(&program, target),
            None => kiss.check_assertions(&program),
        }
    });
    match run.result {
        Supervised::Crashed { cause } => (
            CachedVerdict {
                verdict: "crashed".to_string(),
                detail: cause,
                steps: 0,
                states: 0,
            },
            false,
        ),
        Supervised::Completed(outcome) => {
            let (steps, states) =
                outcome.stats().map(|s| (s.steps(), s.states() as u64)).unwrap_or((0, 0));
            let (detail, cacheable) = detail_of(&outcome);
            (
                CachedVerdict {
                    verdict: outcome.verdict_str().to_string(),
                    detail,
                    steps,
                    states,
                },
                cacheable,
            )
        }
    }
}

/// A deterministic one-line detail for each outcome (no wall times, so
/// warm answers are byte-identical to cold ones), plus cacheability.
fn detail_of(outcome: &KissOutcome) -> (String, bool) {
    match outcome {
        KissOutcome::NoErrorFound(_) => ("no error found".to_string(), true),
        KissOutcome::AssertionViolation(report) => (
            format!(
                "assertion violation: {} threads, {} context switches",
                report.mapped.thread_count, report.mapped.context_switches
            ),
            true,
        ),
        KissOutcome::RaceDetected(report) => {
            let kind = |write: bool| if write { "write" } else { "read" };
            (
                format!(
                    "race: {} at {} vs {} at {}",
                    kind(report.first.is_write),
                    report.first.span,
                    kind(report.second.is_write),
                    report.second.span
                ),
                true,
            )
        }
        KissOutcome::Inconclusive { reason, .. } => (
            format!("resource bound exceeded on {}", reason.as_str()),
            // Steps/states/memory bounds are functions of the request
            // alone; deadline and cancellation depend on the machine.
            matches!(reason, BoundReason::Steps | BoundReason::States | BoundReason::Memory),
        ),
        KissOutcome::RuntimeError(e) => (format!("runtime error: {e}"), true),
        KissOutcome::TransformFailed(e) => (format!("transform failed: {e}"), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request: Request::check(id, "void main() { skip; }"),
            key: 0,
            received: Instant::now(),
            reply: tx,
        };
        (job, rx)
    }

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let queue = Queue::new(8);
        let (a, _rx_a) = job("a");
        let (b, _rx_b) = job("b");
        assert!(queue.push(a).is_ok());
        assert!(queue.push(b).is_ok());
        assert_eq!(queue.depth(), 2);
        queue.close();
        assert_eq!(queue.pop().unwrap().request.id, "a");
        assert_eq!(queue.pop().unwrap().request.id, "b");
        assert!(queue.pop().is_none(), "closed and drained");
        let (c, rx_c) = job("c");
        let Err(rejected) = queue.push(c) else { panic!("closed queue accepted a job") };
        let _ = rejected.reply.send(Response::error(rejected.request.id, "draining"));
        assert_eq!(rx_c.recv().unwrap().verdict, "error");
    }

    #[test]
    fn full_queue_blocks_until_a_worker_pops() {
        let queue = std::sync::Arc::new(Queue::new(1));
        let (a, _rx_a) = job("a");
        assert!(queue.push(a).is_ok());
        let q = queue.clone();
        let pusher = std::thread::spawn(move || {
            let (b, _rx_b) = job("b");
            assert!(q.push(b).is_ok());
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push should block on a full queue");
        assert_eq!(queue.pop().unwrap().request.id, "a");
        pusher.join().unwrap();
        assert_eq!(queue.pop().unwrap().request.id, "b");
    }

    #[test]
    fn execute_answers_check_and_race_requests() {
        let cfg = ServeConfig { budget: Budget::small(), ..ServeConfig::default() };
        let seq = AtomicU64::new(0);
        let req = Request::check("t", "int x;\nvoid main() { x = 1; assert x == 1; }");
        let (verdict, cacheable) = execute(&req, &cfg, &seq);
        assert_eq!(verdict.verdict, "pass");
        assert_eq!(verdict.detail, "no error found");
        assert!(cacheable);
        assert!(verdict.steps > 0);

        let racy = "int g;\nvoid writer() { g = 1; }\nvoid main() { async writer(); g = 2; }";
        let (verdict, cacheable) = execute(&Request::race("t", racy, "g"), &cfg, &seq);
        assert_eq!(verdict.verdict, "race");
        assert!(verdict.detail.starts_with("race: "), "{}", verdict.detail);
        assert!(cacheable);

        let (verdict, cacheable) = execute(&Request::race("t", racy, "nope"), &cfg, &seq);
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.contains("unknown race target"));
        assert!(!cacheable);

        let (verdict, cacheable) = execute(&Request::check("t", "not a program"), &cfg, &seq);
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.starts_with("parse: "));
        assert!(!cacheable);
    }

    #[test]
    fn deadline_inconclusives_are_not_cacheable() {
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Deadline,
        };
        assert!(!detail_of(&outcome).1);
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Steps,
        };
        assert!(detail_of(&outcome).1);
    }
}
