//! The check server: listeners, a bounded job queue, and a worker pool
//! executing checks under the `kiss-core` supervisor.
//!
//! Connections are line-oriented ([`crate::protocol`]). Each accepted
//! connection gets a reader thread and a writer thread; parsed requests
//! either answer immediately from the result cache or enqueue a job for
//! the worker pool, so responses can arrive out of request order
//! (clients correlate by `id`). Shutdown is a [`CancelToken`]: accept
//! loops and readers stop, queued jobs drain, and `run` returns the
//! tally.
//!
//! Robustness: queue admission waits at most
//! [`ServeConfig::admission_wait`] and then sheds the request with a
//! typed `overloaded` response (never blocking a reader forever);
//! connections with no traffic and no in-flight work for
//! [`ServeConfig::idle_timeout`] are closed so dead clients cannot pin
//! handler threads; `status` pings answer immediately with queue depth,
//! cache size, and uptime; and the journal is compacted at drain.
//! Failpoints (`serve.accept`, `serve.conn.read`, `serve.conn.write`,
//! `serve.enqueue`, `serve.worker`) let the chaos suite inject
//! connection drops, torn writes, admission failures, and worker
//! panics — a worker panic lands in the supervisor's `catch_unwind`
//! and comes back as a `crashed` verdict, which is never cached.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kiss_core::{Kiss, KissOutcome, RaceTarget, Supervised, Supervisor};
use kiss_fault::Action;
use kiss_obs::span::next_span_id;
use kiss_obs::{AtomicHistogram, Event, Gauge, Obs, Registry, Span, TraceId};
use kiss_seq::{BoundReason, Budget, CancelToken};

use crate::cache::{CachedVerdict, ResultCache};
use crate::protocol::{
    decode_request, CacheStatus, FrameError, Op, Request, Response, ServeSnapshot,
    MAX_FRAME_BYTES,
};

/// How long a connection reader blocks before re-checking shutdown.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long an accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Failpoint: one accepted connection (error = drop it on the floor).
const ACCEPT_POINT: &str = "serve.accept";
/// Failpoint: one connection read (error = treat the peer as gone,
/// truncate = deliver only the first K bytes of the chunk).
const READ_POINT: &str = "serve.conn.read";
/// Failpoint: one response write (error = broken pipe, truncate = torn
/// response then close).
const WRITE_POINT: &str = "serve.conn.write";
/// Failpoint: one queue admission (error = immediate shed).
const ENQUEUE_POINT: &str = "serve.enqueue";
/// Failpoint: one check execution, inside the supervisor's
/// `catch_unwind` (panic/error = crashed verdict, not cached).
const WORKER_POINT: &str = "serve.worker";

/// Server configuration.
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: Option<PathBuf>,
    /// Loopback TCP port to listen on (0 picks a free one; see
    /// [`Server::local_port`]).
    pub port: Option<u16>,
    /// Worker threads executing checks.
    pub jobs: usize,
    /// Bounded queue depth (backpressure).
    pub max_queue: usize,
    /// How long one request may wait for a queue slot before it is
    /// shed with a typed `overloaded` response.
    pub admission_wait: Duration,
    /// Close a connection after this long with no bytes, no responses,
    /// and no in-flight jobs (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Journal directory for the result cache (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Default check budget (requests may override axes).
    pub budget: Budget,
    /// Supervisor retry ladder depth.
    pub retries: u32,
    /// Observer receiving server and check events.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: None,
            port: None,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            max_queue: 64,
            admission_wait: Duration::from_secs(10),
            idle_timeout: None,
            cache_dir: None,
            budget: Budget::generous(),
            retries: 0,
            obs: Obs::off(),
        }
    }
}

/// The request tally a finished server run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Well-formed requests received (hits + misses + shed).
    pub requests: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests executed (includes `no_cache` bypasses).
    pub cache_misses: u64,
    /// Requests shed with a typed `overloaded` response.
    pub shed: u64,
}

/// A response plus the span context (`trace`, parent span id) the
/// writer thread opens its `reply` span under; `None` for control-plane
/// and protocol-error responses, which are not traced.
type Outgoing = (Response, Option<(TraceId, u64)>);

/// One queued execution.
struct Job {
    request: Request,
    key: u128,
    received: Instant,
    reply: mpsc::Sender<Outgoing>,
    /// The request's trace.
    trace: TraceId,
    /// The `queued` span id, reserved at admission (the handler emits
    /// the open, parented under `recv`; the popping worker emits the
    /// close and parents its `check` span here).
    queued_span: u64,
}

/// Why a push did not enqueue.
enum PushError {
    /// The queue stayed full for the whole admission wait.
    Full(Box<Job>),
    /// The queue is closed (server draining).
    Closed(Box<Job>),
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded job queue: bounded-wait push (backpressure toward
/// clients, then load shedding), blocking pop (workers park when idle).
struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    /// High-water mark of the depth since start (reported by `metrics`).
    peak: AtomicU64,
}

impl Queue {
    fn new(cap: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
            peak: AtomicU64::new(0),
        }
    }

    /// Waits up to `wait` for a slot; gives the job back when the queue
    /// stayed full ([`PushError::Full`]) or has been closed
    /// ([`PushError::Closed`]).
    fn push(&self, job: Job, wait: Duration) -> Result<(), PushError> {
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().expect("queue lock");
        while state.jobs.len() >= self.cap && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(Box::new(job)));
            }
            let (next, _) = self
                .not_full
                .wait_timeout(state, deadline - now)
                .expect("queue lock");
            state = next;
        }
        if state.closed {
            return Err(PushError::Closed(Box::new(job)));
        }
        state.jobs.push_back(job);
        self.peak.fetch_max(state.jobs.len() as u64, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while the queue is empty; `None` once it is closed *and*
    /// drained, so pending jobs still complete during shutdown.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> u64 {
        self.state.lock().expect("queue lock").jobs.len() as u64
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// One accepted connection, unix or TCP.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Accepted streams inherit the listener's non-blocking flag; flip
    /// them back to blocking with a short read timeout so readers poll
    /// the shutdown token.
    fn prepare(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Atomic mirrors of [`ServeStats`], shared across handler threads.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    shed: AtomicU64,
}

/// Live metrics shared by handlers and workers. The [`Registry`] owns
/// the named series the `metrics` op snapshots; the hot-path handles
/// are resolved once at startup so workers never take the registry
/// lock.
struct LiveMetrics {
    registry: Registry,
    /// Workers executing a check right now (gauge `in_flight`).
    in_flight: Arc<Gauge>,
    /// Wall milliseconds from receipt to executed answer (histogram
    /// `check`: queue wait + execution).
    check_ms: Arc<AtomicHistogram>,
    /// Wall milliseconds from receipt to cache-hit answer (histogram
    /// `hit`).
    hit_ms: Arc<AtomicHistogram>,
}

impl LiveMetrics {
    fn new() -> LiveMetrics {
        let registry = Registry::new();
        let in_flight = registry.gauge("in_flight");
        let check_ms = registry.histogram("check");
        let hit_ms = registry.histogram("hit");
        LiveMetrics { registry, in_flight, check_ms, hit_ms }
    }
}

/// Everything a connection handler needs, bundled so signatures stay
/// readable.
struct Shared<'a> {
    queue: &'a Queue,
    cache: &'a Mutex<ResultCache>,
    counters: &'a Counters,
    metrics: &'a LiveMetrics,
    cfg: &'a ServeConfig,
    started: Instant,
}

/// Per-connection liveness: when the last byte or response moved, and
/// how many enqueued jobs are still unanswered. The idle deadline only
/// fires when both are quiet — a silent client waiting on a slow check
/// is *waiting*, not dead.
struct ConnActivity {
    opened: Instant,
    last_ms: AtomicU64,
    pending: AtomicU64,
}

impl ConnActivity {
    fn new() -> ConnActivity {
        ConnActivity { opened: Instant::now(), last_ms: AtomicU64::new(0), pending: AtomicU64::new(0) }
    }

    fn touch(&self) {
        self.last_ms.store(self.opened.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn idle_for(&self) -> Duration {
        let now = self.opened.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }

    fn is_quiet(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    cfg: ServeConfig,
    listeners: Vec<Listener>,
    local_port: Option<u16>,
}

impl Server {
    /// Binds the configured endpoints. A stale unix socket file is
    /// removed first; at least one of `socket`/`port` must be set.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let mut listeners = Vec::new();
        let mut local_port = None;
        if let Some(path) = &cfg.socket {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                listeners.push(Listener::Unix(listener));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform; use --port",
                ));
            }
        }
        if let Some(port) = cfg.port {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            local_port = Some(listener.local_addr()?.port());
            listener.set_nonblocking(true)?;
            listeners.push(Listener::Tcp(listener));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs a --socket path or a --port",
            ));
        }
        Ok(Server { cfg, listeners, local_port })
    }

    /// The bound TCP port, when a TCP listener was requested (resolves
    /// `--port 0`).
    pub fn local_port(&self) -> Option<u16> {
        self.local_port
    }

    /// Serves until `shutdown` is cancelled: accept loops stop, active
    /// connections finish their in-flight requests, queued jobs drain,
    /// the journal is compacted, and the tally is returned.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<ServeStats> {
        let cache = Mutex::new(match &self.cfg.cache_dir {
            Some(dir) => ResultCache::open(dir)?.with_observer(self.cfg.obs.clone()),
            None => ResultCache::in_memory(),
        });
        let queue = Queue::new(self.cfg.max_queue);
        let counters = Counters::default();
        let metrics = LiveMetrics::new();
        let active = AtomicUsize::new(0);
        let label_seq = AtomicU64::new(0);
        let cfg = &self.cfg;
        let shared = Shared {
            queue: &queue,
            cache: &cache,
            counters: &counters,
            metrics: &metrics,
            cfg,
            started: Instant::now(),
        };
        let shared = &shared;

        std::thread::scope(|s| {
            for _ in 0..cfg.jobs.max(1) {
                s.spawn(|| worker_loop(&queue, &cache, cfg, &label_seq, shared.metrics));
            }
            for listener in &self.listeners {
                let active = &active;
                s.spawn(move || {
                    while !shutdown.is_cancelled() {
                        match listener.accept() {
                            Ok(stream) => {
                                if let Some(action) = kiss_fault::hit(ACCEPT_POINT) {
                                    note_fault(&cfg.obs, ACCEPT_POINT, action);
                                    match action {
                                        // The connection vanishes as if the
                                        // peer dropped mid-handshake.
                                        Action::Error | Action::Truncate(_) => continue,
                                        Action::Panic => {
                                            panic!("kiss-fault: injected panic at {ACCEPT_POINT}")
                                        }
                                        Action::Delay(d) => std::thread::sleep(d),
                                    }
                                }
                                active.fetch_add(1, Ordering::SeqCst);
                                s.spawn(move || {
                                    handle_connection(stream, s, shared, shutdown);
                                    active.fetch_sub(1, Ordering::SeqCst);
                                });
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            // Transient accept failures (e.g. the peer
                            // vanished mid-handshake) are not fatal.
                            Err(_) => std::thread::sleep(ACCEPT_POLL),
                        }
                    }
                });
            }
            // The scope body itself coordinates the drain: once shutdown
            // is requested and every connection handler has finished
            // submitting, close the queue so workers exit after the
            // backlog empties.
            while !shutdown.is_cancelled() {
                std::thread::sleep(ACCEPT_POLL);
            }
            while active.load(Ordering::SeqCst) != 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            queue.close();
        });

        // Drain-time housekeeping: fold the append-heavy journal down to
        // one record per entry so restarts replay a minimal file. Best
        // effort — a compaction failure leaves the journal valid.
        if let Ok(mut cache) = cache.into_inner() {
            let _ = cache.compact();
        }

        #[cfg(unix)]
        if let Some(path) = &self.cfg.socket {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeStats {
            requests: counters.requests.load(Ordering::SeqCst),
            cache_hits: counters.hits.load(Ordering::SeqCst),
            cache_misses: counters.misses.load(Ordering::SeqCst),
            shed: counters.shed.load(Ordering::SeqCst),
        })
    }
}

fn note_fault(obs: &Obs, point: &str, action: Action) {
    obs.emit(|_| Event::FaultInjected {
        point: point.to_string(),
        action: action.name().to_string(),
    });
}

/// Reads frames off one connection until EOF, shutdown, or the idle
/// deadline. Writes go through a dedicated thread so cache hits answer
/// while earlier misses are still executing.
fn handle_connection<'scope>(
    stream: Stream,
    scope: &'scope std::thread::Scope<'scope, '_>,
    shared: &'scope Shared<'scope>,
    shutdown: &'scope CancelToken,
) {
    if stream.prepare().is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let activity = Arc::new(ConnActivity::new());
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let writer_activity = activity.clone();
    let obs = &shared.cfg.obs;
    scope.spawn(move || {
        for (response, span_ctx) in rx {
            if let Some(action) = kiss_fault::hit(WRITE_POINT) {
                note_fault(obs, WRITE_POINT, action);
                match action {
                    // A broken pipe: the response (and the rest of the
                    // stream) never reaches the peer.
                    Action::Error => break,
                    Action::Panic => panic!("kiss-fault: injected panic at {WRITE_POINT}"),
                    Action::Delay(d) => std::thread::sleep(d),
                    Action::Truncate(cut) => {
                        // A torn response, then the connection dies.
                        let line = response.to_json();
                        let cut = cut.min(line.len());
                        let _ = writer.write_all(&line.as_bytes()[..cut]);
                        let _ = writer.flush();
                        break;
                    }
                }
            }
            let is_job = response.cache == CacheStatus::Miss;
            // The reply span covers the write + flush of this response.
            let reply_span =
                span_ctx.map(|(trace, parent)| Span::open(obs, trace, parent, "reply"));
            let ok = writeln!(writer, "{}", response.to_json())
                .and_then(|()| writer.flush())
                .is_ok();
            drop(reply_span);
            // Executed responses retire their in-flight slot whether or
            // not the peer still listens, so the idle accounting never
            // wedges a connection open.
            if is_job {
                writer_activity.pending.fetch_sub(1, Ordering::SeqCst);
            }
            if !ok {
                break;
            }
            writer_activity.touch();
        }
    });

    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // Bytes discarded from a frame that outgrew MAX_FRAME_BYTES before
    // its newline arrived; the frame is answered with one error once the
    // newline shows up.
    let mut discarded = 0usize;
    'read: while !shutdown.is_cancelled() {
        let mut n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(idle) = shared.cfg.idle_timeout {
                    if activity.is_quiet() && activity.idle_for() >= idle {
                        break;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if let Some(action) = kiss_fault::hit(READ_POINT) {
            note_fault(obs, READ_POINT, action);
            match action {
                // The peer is treated as gone mid-read.
                Action::Error => break,
                Action::Panic => panic!("kiss-fault: injected panic at {READ_POINT}"),
                Action::Delay(d) => std::thread::sleep(d),
                // A short read: only the chunk's head arrived.
                Action::Truncate(cut) => n = n.min(cut.max(1)),
            }
        }
        activity.touch();
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let rest = buf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut buf, rest);
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if discarded > 0 {
                let err = FrameError::Oversized { bytes: discarded + line.len() };
                if tx.send((Response::error("", err.message()), None)).is_err() {
                    break 'read;
                }
                discarded = 0;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let text = String::from_utf8_lossy(&line);
            handle_line(&text, &tx, &activity, shared);
        }
        // No newline yet: a frame past the cap can never become valid,
        // so stop buffering it.
        if buf.len() > MAX_FRAME_BYTES {
            discarded += buf.len();
            buf.clear();
        }
    }
}

/// Decodes and answers one frame: error, status, cache hit, enqueue,
/// or shed.
fn handle_line(
    line: &str,
    tx: &mpsc::Sender<Outgoing>,
    activity: &ConnActivity,
    shared: &Shared<'_>,
) {
    let Shared { queue, cache, counters, metrics, cfg, started } = *shared;
    let request = match decode_request(line) {
        Ok(request) => request,
        Err(e) => {
            let _ = tx.send((Response::error("", e.message()), None));
            return;
        }
    };
    // Status is control-plane: answered inline, never queued, and kept
    // out of the request/cache accounting so the balance equation
    // (requests = hits + misses + shed) only covers checking ops.
    if request.op == Op::Status {
        let cache_entries = cache.lock().expect("cache lock").len() as u64;
        let detail = format!(
            "queue_depth={} cache_entries={} uptime_ms={} requests={} hits={} misses={} shed={}",
            queue.depth(),
            cache_entries,
            started.elapsed().as_millis(),
            counters.requests.load(Ordering::SeqCst),
            counters.hits.load(Ordering::SeqCst),
            counters.misses.load(Ordering::SeqCst),
            counters.shed.load(Ordering::SeqCst),
        );
        let _ = tx.send((
            Response {
                id: request.id,
                verdict: "ok".to_string(),
                detail,
                steps: 0,
                states: 0,
                cache: CacheStatus::None,
            },
            None,
        ));
        return;
    }
    // Metrics is control-plane too: the full snapshot travels in the
    // response detail, and the scrape itself never shows up in the
    // numbers it reports.
    if request.op == Op::Metrics {
        let (cache_entries, journal_records, journal_bytes, compactions) = {
            let cache = cache.lock().expect("cache lock");
            (
                cache.len() as u64,
                cache.journal_records() as u64,
                cache.journal_bytes(),
                cache.compactions(),
            )
        };
        let snap = ServeSnapshot {
            uptime_ms: started.elapsed().as_millis() as u64,
            queue_depth: queue.depth(),
            queue_peak: queue.peak(),
            in_flight: metrics.in_flight.get(),
            cache_entries,
            journal_records,
            journal_bytes,
            compactions,
            requests: counters.requests.load(Ordering::SeqCst),
            hits: counters.hits.load(Ordering::SeqCst),
            misses: counters.misses.load(Ordering::SeqCst),
            shed: counters.shed.load(Ordering::SeqCst),
            faults: kiss_fault::total_fired(),
            latency: metrics.registry.snapshot().histograms,
        };
        let _ = tx.send((
            Response {
                id: request.id,
                verdict: "ok".to_string(),
                detail: snap.to_json(),
                steps: 0,
                states: 0,
                cache: CacheStatus::None,
            },
            None,
        ));
        return;
    }
    let received = Instant::now();
    counters.requests.fetch_add(1, Ordering::SeqCst);
    // The request's trace: client-minted when present, otherwise fresh.
    // `recv` is the root span; it closes when this function returns
    // (hit and shed answers) or after admission hands off to the queue.
    let trace =
        if request.trace.is_none() { TraceId::fresh() } else { request.trace };
    let recv = Span::open_for_request(&cfg.obs, trace, "recv", &request.id);
    cfg.obs.emit(|_| Event::RequestReceived {
        request: request.id.clone(),
        queue_depth: queue.depth(),
    });
    let key = request.cache_key();
    if !request.no_cache {
        let cached = cache.lock().expect("cache lock").lookup(key).cloned();
        if let Some(v) = cached {
            counters.hits.fetch_add(1, Ordering::SeqCst);
            metrics.hit_ms.record(received.elapsed().as_millis() as u64);
            cfg.obs.emit(|_| Event::CacheHit { request: request.id.clone() });
            cfg.obs.emit(|_| Event::RequestDone {
                request: request.id.clone(),
                verdict: v.verdict.clone(),
                wall_ms: 0,
                queue_depth: queue.depth(),
            });
            let _ = tx.send((
                Response {
                    id: request.id,
                    verdict: v.verdict,
                    detail: v.detail,
                    steps: v.steps,
                    states: v.states,
                    cache: CacheStatus::Hit,
                },
                Some((trace, recv.id())),
            ));
            return;
        }
    }
    // The job (and its request) moves into the queue on success; keep
    // the id for the miss event emitted after admission. The `queued`
    // span id is reserved now but only opened once admission succeeds;
    // the popping worker emits its close.
    let request_id = request.id.clone();
    let queued_span = next_span_id();
    let job = Job { key, received, reply: tx.clone(), trace, queued_span, request };
    let admission = match kiss_fault::hit(ENQUEUE_POINT) {
        Some(action) => {
            note_fault(&cfg.obs, ENQUEUE_POINT, action);
            match action {
                // Admission refused outright: the request is shed even
                // though the queue may have room.
                Action::Error | Action::Truncate(_) => Err(PushError::Full(Box::new(job))),
                Action::Panic => panic!("kiss-fault: injected panic at {ENQUEUE_POINT}"),
                Action::Delay(d) => {
                    std::thread::sleep(d);
                    queue.push(job, cfg.admission_wait)
                }
            }
        }
        None => queue.push(job, cfg.admission_wait),
    };
    match admission {
        Ok(()) => {
            // The miss is only booked once the job is actually admitted,
            // so shed requests count in `shed` alone and the balance
            // equation stays exact.
            counters.misses.fetch_add(1, Ordering::SeqCst);
            activity.pending.fetch_add(1, Ordering::SeqCst);
            cfg.obs.emit(|_| Event::CacheMiss { request: request_id });
            let recv_id = recv.id();
            cfg.obs.emit(|_| Event::SpanOpen {
                trace: trace.to_hex(),
                span: queued_span,
                parent: recv_id,
                name: "queued".to_string(),
                request: None,
            });
        }
        Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
            counters.shed.fetch_add(1, Ordering::SeqCst);
            let depth = queue.depth();
            cfg.obs.emit(|_| Event::RequestShed {
                request: job.request.id.clone(),
                queue_depth: depth,
            });
            cfg.obs.emit(|_| Event::RequestDone {
                request: job.request.id.clone(),
                verdict: "overloaded".to_string(),
                wall_ms: received.elapsed().as_millis() as u64,
                queue_depth: depth,
            });
            let _ = job
                .reply
                .send((Response::overloaded(job.request.id, depth), Some((trace, recv.id()))));
        }
    }
}

/// Pops jobs until the queue closes: execute, cache, answer.
fn worker_loop(
    queue: &Queue,
    cache: &Mutex<ResultCache>,
    cfg: &ServeConfig,
    seq: &AtomicU64,
    metrics: &LiveMetrics,
) {
    while let Some(job) = queue.pop() {
        // The `queued` span (opened at admission) ends here: its wall
        // time is exactly the queue wait.
        cfg.obs.emit(|_| Event::SpanClose {
            trace: job.trace.to_hex(),
            span: job.queued_span,
            name: "queued".to_string(),
            wall_ms: job.received.elapsed().as_millis() as u64,
        });
        metrics.in_flight.inc();
        let check_span = Span::open(&cfg.obs, job.trace, job.queued_span, "check");
        let check_id = check_span.id();
        let (verdict, cacheable) = execute(&job.request, cfg, seq, job.trace, check_id);
        check_span.close();
        metrics.in_flight.dec();
        if cacheable {
            cache.lock().expect("cache lock").insert(job.key, verdict.clone());
        }
        let wall_ms = job.received.elapsed().as_millis() as u64;
        metrics.check_ms.record(wall_ms);
        cfg.obs.emit(|_| Event::RequestDone {
            request: job.request.id.clone(),
            verdict: verdict.verdict.clone(),
            wall_ms,
            queue_depth: queue.depth(),
        });
        let _ = job.reply.send((
            Response {
                id: job.request.id,
                verdict: verdict.verdict,
                detail: verdict.detail,
                steps: verdict.steps,
                states: verdict.states,
                cache: CacheStatus::Miss,
            },
            Some((job.trace, check_id)),
        ));
    }
}

/// Runs one request under supervision. The second return value says
/// whether the verdict may enter the cache: verdicts that depend on
/// wall-clock or server state (deadline/cancellation inconclusives,
/// crashes, setup failures) must not.
fn execute(
    request: &Request,
    cfg: &ServeConfig,
    seq: &AtomicU64,
    trace: TraceId,
    parent: u64,
) -> (CachedVerdict, bool) {
    let error = |detail: String| CachedVerdict {
        verdict: "error".to_string(),
        detail,
        steps: 0,
        states: 0,
    };
    let program = match kiss_lang::parse_and_lower(&request.source) {
        Ok(program) => program,
        Err(e) => return (error(format!("parse: {e}")), false),
    };
    let target = match &request.op {
        Op::Check => None,
        Op::Race { target } => match RaceTarget::resolve(&program, target) {
            Some(resolved) => Some(resolved),
            None => return (error(format!("unknown race target `{target}`")), false),
        },
        // Control-plane ops never reach the queue; guard against future
        // callers.
        Op::Status | Op::Metrics => {
            return (error("control-plane ops are not executable".to_string()), false)
        }
    };
    let mut budget = cfg.budget;
    if let Some(steps) = request.max_steps {
        budget.max_steps = steps;
    }
    if let Some(states) = request.max_states {
        budget.max_states = states as usize;
    }
    if let Some(ms) = request.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    // A process-unique label keeps check lifecycle events distinct even
    // when clients reuse request ids across submissions.
    let label = format!("{}#{}", request.id, seq.fetch_add(1, Ordering::Relaxed));
    // A fresh token, deliberately NOT the shutdown token: in-flight
    // checks run to completion during a drain.
    let supervisor = Supervisor::new(budget)
        .with_retries(cfg.retries)
        .with_cancel(CancelToken::new())
        .with_observer(cfg.obs.clone());
    let run = supervisor.run_scoped(&label, |budget, cancel, obs| {
        if let Some(action) = kiss_fault::hit(WORKER_POINT) {
            note_fault(obs, WORKER_POINT, action);
            match action {
                // Both flavors surface as a panic here: the supervisor's
                // catch_unwind converts it into a `crashed` verdict that
                // is answered but never cached.
                Action::Error | Action::Panic => {
                    panic!("kiss-fault: injected {} at {WORKER_POINT}", action.name())
                }
                Action::Delay(d) => std::thread::sleep(d),
                Action::Truncate(_) => {}
            }
        }
        let kiss = Kiss::new()
            .with_max_ts(request.max_ts)
            .with_engine(request.engine)
            .with_store(request.store)
            .with_explore_jobs(request.explore_jobs)
            .with_budget(budget)
            .with_cancel(cancel)
            .with_observer(obs.clone())
            .with_trace(trace, parent)
            .with_validation(false);
        match target {
            Some(target) => kiss.check_race(&program, target),
            None => kiss.check_assertions(&program),
        }
    });
    match run.result {
        Supervised::Crashed { cause } => (
            CachedVerdict {
                verdict: "crashed".to_string(),
                detail: cause,
                steps: 0,
                states: 0,
            },
            false,
        ),
        Supervised::Completed(outcome) => {
            let (steps, states) =
                outcome.stats().map(|s| (s.steps(), s.states() as u64)).unwrap_or((0, 0));
            let (detail, cacheable) = detail_of(&outcome);
            (
                CachedVerdict {
                    verdict: outcome.verdict_str().to_string(),
                    detail,
                    steps,
                    states,
                },
                cacheable,
            )
        }
    }
}

/// A deterministic one-line detail for each outcome (no wall times, so
/// warm answers are byte-identical to cold ones), plus cacheability.
fn detail_of(outcome: &KissOutcome) -> (String, bool) {
    match outcome {
        KissOutcome::NoErrorFound(_) => ("no error found".to_string(), true),
        KissOutcome::AssertionViolation(report) => (
            format!(
                "assertion violation: {} threads, {} context switches",
                report.mapped.thread_count, report.mapped.context_switches
            ),
            true,
        ),
        KissOutcome::RaceDetected(report) => {
            let kind = |write: bool| if write { "write" } else { "read" };
            (
                format!(
                    "race: {} at {} vs {} at {}",
                    kind(report.first.is_write),
                    report.first.span,
                    kind(report.second.is_write),
                    report.second.span
                ),
                true,
            )
        }
        KissOutcome::Inconclusive { reason, .. } => (
            format!("resource bound exceeded on {}", reason.as_str()),
            // Steps/states/memory bounds are functions of the request
            // alone; deadline and cancellation depend on the machine.
            matches!(reason, BoundReason::Steps | BoundReason::States | BoundReason::Memory),
        ),
        KissOutcome::RuntimeError(e) => (format!("runtime error: {e}"), true),
        KissOutcome::TransformFailed(e) => (format!("transform failed: {e}"), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_secs(5);

    fn job(id: &str) -> (Job, mpsc::Receiver<Outgoing>) {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request: Request::check(id, "void main() { skip; }"),
            key: 0,
            received: Instant::now(),
            reply: tx,
            trace: TraceId::NONE,
            queued_span: 0,
        };
        (job, rx)
    }

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let queue = Queue::new(8);
        let (a, _rx_a) = job("a");
        let (b, _rx_b) = job("b");
        assert!(queue.push(a, WAIT).is_ok());
        assert!(queue.push(b, WAIT).is_ok());
        assert_eq!(queue.depth(), 2);
        queue.close();
        assert_eq!(queue.pop().unwrap().request.id, "a");
        assert_eq!(queue.pop().unwrap().request.id, "b");
        assert!(queue.pop().is_none(), "closed and drained");
        let (c, rx_c) = job("c");
        let Err(PushError::Closed(rejected)) = queue.push(c, WAIT) else {
            panic!("closed queue accepted a job")
        };
        let _ = rejected.reply.send((Response::error(rejected.request.id, "draining"), None));
        assert_eq!(rx_c.recv().unwrap().0.verdict, "error");
    }

    #[test]
    fn full_queue_blocks_until_a_worker_pops() {
        let queue = std::sync::Arc::new(Queue::new(1));
        let (a, _rx_a) = job("a");
        assert!(queue.push(a, WAIT).is_ok());
        let q = queue.clone();
        let pusher = std::thread::spawn(move || {
            let (b, _rx_b) = job("b");
            assert!(q.push(b, WAIT).is_ok());
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!pusher.is_finished(), "push should block on a full queue");
        assert_eq!(queue.pop().unwrap().request.id, "a");
        pusher.join().unwrap();
        assert_eq!(queue.pop().unwrap().request.id, "b");
    }

    #[test]
    fn full_queue_sheds_after_the_admission_wait() {
        let queue = Queue::new(1);
        let (a, _rx_a) = job("a");
        assert!(queue.push(a, WAIT).is_ok());
        let (b, _rx_b) = job("b");
        let before = Instant::now();
        let Err(PushError::Full(rejected)) = queue.push(b, Duration::from_millis(50)) else {
            panic!("full queue must shed after the wait")
        };
        assert!(before.elapsed() >= Duration::from_millis(50));
        assert_eq!(rejected.request.id, "b");
        // The queue itself is untouched: "a" still waits for a worker.
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn execute_answers_check_and_race_requests() {
        let cfg = ServeConfig { budget: Budget::small(), ..ServeConfig::default() };
        let seq = AtomicU64::new(0);
        let run = |req: &Request| execute(req, &cfg, &seq, TraceId::NONE, 0);
        let req = Request::check("t", "int x;\nvoid main() { x = 1; assert x == 1; }");
        let (verdict, cacheable) = run(&req);
        assert_eq!(verdict.verdict, "pass");
        assert_eq!(verdict.detail, "no error found");
        assert!(cacheable);
        assert!(verdict.steps > 0);

        let racy = "int g;\nvoid writer() { g = 1; }\nvoid main() { async writer(); g = 2; }";
        let (verdict, cacheable) = run(&Request::race("t", racy, "g"));
        assert_eq!(verdict.verdict, "race");
        assert!(verdict.detail.starts_with("race: "), "{}", verdict.detail);
        assert!(cacheable);

        let (verdict, cacheable) = run(&Request::race("t", racy, "nope"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.contains("unknown race target"));
        assert!(!cacheable);

        let (verdict, cacheable) = run(&Request::check("t", "not a program"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.starts_with("parse: "));
        assert!(!cacheable);
    }

    #[test]
    fn deadline_inconclusives_are_not_cacheable() {
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Deadline,
        };
        assert!(!detail_of(&outcome).1);
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Steps,
        };
        assert!(detail_of(&outcome).1);
    }

    #[test]
    fn idle_accounting_only_fires_when_quiet() {
        let activity = ConnActivity::new();
        activity.touch();
        assert!(activity.is_quiet());
        assert!(activity.idle_for() < Duration::from_millis(100));
        activity.pending.fetch_add(1, Ordering::SeqCst);
        assert!(!activity.is_quiet(), "in-flight work suppresses the idle deadline");
        activity.pending.fetch_sub(1, Ordering::SeqCst);
        assert!(activity.is_quiet());
    }
}
