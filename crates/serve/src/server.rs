//! The check server: listeners, a bounded job queue, and a worker pool
//! executing checks under the `kiss-core` supervisor.
//!
//! Connections are line-oriented ([`crate::protocol`]). The front end
//! is event-driven: a small pool of driver threads
//! ([`ServeConfig::io_threads`]) multiplexes every accepted connection
//! over nonblocking sockets, so hundreds of idle clients cost file
//! descriptors, not threads. Each driver iteration adopts newly
//! accepted streams, pumps readable bytes into frames, retries
//! deferred admissions, and flushes queued responses; when an
//! iteration makes no progress the driver backs off with an adaptive
//! sleep (50µs doubling to 5ms), so a hot connection is served at
//! poll speed while an idle server costs almost nothing.
//!
//! Parsed requests either answer immediately from the result cache or
//! enqueue a job for the worker pool, so responses can arrive out of
//! request order (clients correlate by `id`). A `batch` frame fans
//! into its entries at this point — batching is framing only, the
//! per-request path is identical. Shutdown is a [`CancelToken`]:
//! accept loops and reads stop, deferred admissions resolve, queued
//! jobs drain, and `run` returns the tally.
//!
//! Robustness: queue admission is asynchronous — a request that finds
//! the queue full parks on the driver's waiting list for up to
//! [`ServeConfig::admission_wait`] (never blocking the driver) and is
//! then shed with a typed `overloaded` response; connections with no
//! traffic and no in-flight work for [`ServeConfig::idle_timeout`]
//! are closed so dead clients cannot pin resources; `status` pings
//! answer immediately with queue depth, cache size, and uptime; and
//! the journal is compacted at drain. Failpoints (`serve.accept`,
//! `serve.conn.read`, `serve.conn.write`, `serve.enqueue`,
//! `serve.worker`) let the chaos suite inject connection drops, torn
//! writes, admission failures, and worker panics — a worker panic
//! lands in the supervisor's `catch_unwind` and comes back as a
//! `crashed` verdict, which is never cached.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kiss_core::{Kiss, KissOutcome, RaceTarget, Supervised, Supervisor};
use kiss_fault::Action;
use kiss_obs::span::next_span_id;
use kiss_obs::{AtomicHistogram, Event, Gauge, Obs, Registry, Span, TraceId};
use kiss_seq::{BoundReason, Budget, CancelToken};

use crate::cache::{CachedVerdict, ResultCache};
use crate::protocol::{
    decode_frame, CacheStatus, Frame, FrameError, Op, Request, Response, ServeSnapshot,
    MAX_FRAME_BYTES,
};

/// How long an accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);
/// A driver's backoff floor after an iteration with no progress.
const DRIVE_MIN_SLEEP: Duration = Duration::from_micros(50);
/// A driver's backoff ceiling while every connection stays quiet.
const DRIVE_MAX_SLEEP: Duration = Duration::from_millis(5);
/// Read chunks one connection may consume per driver iteration, so a
/// firehose client cannot starve its driver's other connections.
const READS_PER_PUMP: usize = 16;

/// Failpoint: one accepted connection (error = drop it on the floor).
const ACCEPT_POINT: &str = "serve.accept";
/// Failpoint: one connection read (error = treat the peer as gone,
/// truncate = deliver only the first K bytes of the chunk).
const READ_POINT: &str = "serve.conn.read";
/// Failpoint: one response write (error = broken pipe, truncate = torn
/// response then close).
const WRITE_POINT: &str = "serve.conn.write";
/// Failpoint: one queue admission (error = immediate shed).
const ENQUEUE_POINT: &str = "serve.enqueue";
/// Failpoint: one check execution, inside the supervisor's
/// `catch_unwind` (panic/error = crashed verdict, not cached).
const WORKER_POINT: &str = "serve.worker";

/// Server configuration.
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: Option<PathBuf>,
    /// Loopback TCP port to listen on (0 picks a free one; see
    /// [`Server::local_port`]).
    pub port: Option<u16>,
    /// Worker threads executing checks.
    pub jobs: usize,
    /// Driver threads multiplexing connections.
    pub io_threads: usize,
    /// Bounded queue depth (backpressure).
    pub max_queue: usize,
    /// How long one request may wait for a queue slot before it is
    /// shed with a typed `overloaded` response.
    pub admission_wait: Duration,
    /// Close a connection after this long with no bytes, no responses,
    /// and no in-flight jobs (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Journal directory for the result cache (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Default check budget (requests may override axes).
    pub budget: Budget,
    /// Supervisor retry ladder depth.
    pub retries: u32,
    /// Observer receiving server and check events.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: None,
            port: None,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            io_threads: 2,
            max_queue: 64,
            admission_wait: Duration::from_secs(10),
            idle_timeout: None,
            cache_dir: None,
            budget: Budget::generous(),
            retries: 0,
            obs: Obs::off(),
        }
    }
}

/// The request tally a finished server run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Well-formed requests received (hits + misses + shed).
    pub requests: u64,
    /// Requests answered from the cache.
    pub cache_hits: u64,
    /// Requests executed (includes `no_cache` bypasses).
    pub cache_misses: u64,
    /// Requests shed with a typed `overloaded` response.
    pub shed: u64,
}

/// A response waiting in a connection's outbox.
struct Outgoing {
    response: Response,
    /// Span context (`trace`, parent span id) the driver opens its
    /// `reply` span under; `None` for control-plane and protocol-error
    /// responses, which are not traced.
    span: Option<(TraceId, u64)>,
    /// Whether writing this response retires one pending job slot in
    /// the connection's idle accounting (executed and shed answers do;
    /// hits and control-plane answers were never pending).
    retires: bool,
}

/// A parked driver's wake-up call. Socket readability is the one event
/// a driver must poll for; everything else that can create work for it
/// — a worker finishing a check, the acceptor handing it a connection —
/// rings the bell so the driver answers immediately instead of on its
/// next backoff tick. This matters most when checks are the only
/// activity: without it a driver burns a wake-up ramp per completion
/// (stealing cycles from the very worker producing them) yet still
/// adds up to [`DRIVE_MAX_SLEEP`] of latency per response.
struct Doorbell {
    rung: Mutex<bool>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell { rung: Mutex::new(false), cv: Condvar::new() }
    }

    /// Wakes the parked owner (or makes its next `wait` return at once).
    fn ring(&self) {
        *self.rung.lock().expect("doorbell lock") = true;
        self.cv.notify_one();
    }

    /// Parks for at most `timeout`, returning early if rung. Spurious
    /// wake-ups cost one extra poll iteration, nothing more.
    fn wait(&self, timeout: Duration) {
        let mut rung = self.rung.lock().expect("doorbell lock");
        if !*rung {
            rung = self.cv.wait_timeout(rung, timeout).expect("doorbell lock").0;
        }
        *rung = false;
    }
}

/// The driver-side state a connection shares with workers: the outbox
/// responses flow through, and the liveness accounting the idle
/// deadline reads. Workers only ever touch this handle — the socket
/// itself stays owned by one driver thread.
struct ConnShared {
    outbox: Mutex<VecDeque<Outgoing>>,
    activity: ConnActivity,
    /// The owning driver's doorbell, rung on every queued response.
    bell: Arc<Doorbell>,
}

impl ConnShared {
    fn new(bell: Arc<Doorbell>) -> ConnShared {
        ConnShared { outbox: Mutex::new(VecDeque::new()), activity: ConnActivity::new(), bell }
    }

    /// Queues one response for the owning driver to flush.
    fn send(&self, out: Outgoing) {
        self.outbox.lock().expect("outbox lock").push_back(out);
        self.bell.ring();
    }
}

/// One queued execution.
struct Job {
    request: Request,
    key: u128,
    received: Instant,
    reply: Arc<ConnShared>,
    /// The request's trace.
    trace: TraceId,
    /// The `queued` span id, reserved at receipt (the driver emits the
    /// open once admission succeeds, parented under `recv`; the popping
    /// worker emits the close and parents its `check` span here).
    queued_span: u64,
}

/// A job that found the queue full and is parked on its driver's
/// waiting list until a slot frees or the admission deadline passes.
struct Waiting {
    job: Box<Job>,
    deadline: Instant,
    /// The `recv` span id sheds parent their `reply` span under.
    recv_span: u64,
}

/// Why a push did not enqueue.
enum PushError {
    /// The queue is full right now.
    Full(Box<Job>),
    /// The queue is closed (server draining).
    Closed(Box<Job>),
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded job queue: nonblocking push (drivers park rejected jobs
/// on their waiting lists), blocking pop (workers park when idle).
struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    cap: usize,
    /// High-water mark of the depth since start (reported by `metrics`).
    peak: AtomicU64,
}

impl Queue {
    fn new(cap: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
            peak: AtomicU64::new(0),
        }
    }

    /// Admits the job if a slot is free right now; gives it back when
    /// the queue is full ([`PushError::Full`]) or has been closed
    /// ([`PushError::Closed`]). Never blocks — a driver thread must
    /// stay responsive to its other connections.
    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(Box::new(job)));
        }
        if state.jobs.len() >= self.cap {
            return Err(PushError::Full(Box::new(job)));
        }
        state.jobs.push_back(job);
        self.peak.fetch_max(state.jobs.len() as u64, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while the queue is empty; `None` once it is closed *and*
    /// drained, so pending jobs still complete during shutdown.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    fn depth(&self) -> u64 {
        self.state.lock().expect("queue lock").jobs.len() as u64
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// One accepted connection, unix or TCP.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Drivers multiplex many connections, so every socket is
    /// nonblocking: reads and writes return `WouldBlock` instead of
    /// parking the thread. TCP also disables Nagle — responses are
    /// small frames on a request/response protocol, and batching them
    /// behind delayed ACKs would cost tens of milliseconds per round
    /// trip.
    fn prepare(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)
            }
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Atomic mirrors of [`ServeStats`] plus the connection-level tallies,
/// shared across drivers and workers.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    shed: AtomicU64,
    /// Connections accepted since start.
    accepted: AtomicU64,
    /// Admissions that found the queue full and parked on a waiting
    /// list (the accept-backlog pressure signal).
    admission_waits: AtomicU64,
    /// Pipelined batch frames received.
    batches: AtomicU64,
}

/// Live metrics shared by drivers and workers. The [`Registry`] owns
/// the named series the `metrics` op snapshots; the hot-path handles
/// are resolved once at startup so workers never take the registry
/// lock.
struct LiveMetrics {
    registry: Registry,
    /// Workers executing a check right now (gauge `in_flight`).
    in_flight: Arc<Gauge>,
    /// Client connections open right now (gauge `conns`; its peak is
    /// the `conns_peak` snapshot field).
    conns: Arc<Gauge>,
    /// Wall milliseconds from receipt to executed answer (histogram
    /// `check`: queue wait + execution).
    check_ms: Arc<AtomicHistogram>,
    /// Wall milliseconds from receipt to cache-hit answer (histogram
    /// `hit`).
    hit_ms: Arc<AtomicHistogram>,
}

impl LiveMetrics {
    fn new() -> LiveMetrics {
        let registry = Registry::new();
        let in_flight = registry.gauge("in_flight");
        let conns = registry.gauge("conns");
        let check_ms = registry.histogram("check");
        let hit_ms = registry.histogram("hit");
        LiveMetrics { registry, in_flight, conns, check_ms, hit_ms }
    }
}

/// Everything a driver or worker needs, bundled so signatures stay
/// readable.
struct Shared<'a> {
    queue: &'a Queue,
    cache: &'a ResultCache,
    counters: &'a Counters,
    metrics: &'a LiveMetrics,
    cfg: &'a ServeConfig,
    started: Instant,
}

/// Per-connection liveness: when the last byte or response moved, and
/// how many enqueued jobs are still unanswered. The idle deadline only
/// fires when both are quiet — a silent client waiting on a slow check
/// is *waiting*, not dead.
struct ConnActivity {
    opened: Instant,
    last_ms: AtomicU64,
    pending: AtomicU64,
}

impl ConnActivity {
    fn new() -> ConnActivity {
        ConnActivity { opened: Instant::now(), last_ms: AtomicU64::new(0), pending: AtomicU64::new(0) }
    }

    fn touch(&self) {
        self.last_ms.store(self.opened.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn idle_for(&self) -> Duration {
        let now = self.opened.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }

    fn is_quiet(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    cfg: ServeConfig,
    listeners: Vec<Listener>,
    local_port: Option<u16>,
}

impl Server {
    /// Binds the configured endpoints. A stale unix socket file is
    /// removed first; at least one of `socket`/`port` must be set.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let mut listeners = Vec::new();
        let mut local_port = None;
        if let Some(path) = &cfg.socket {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                listeners.push(Listener::Unix(listener));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform; use --port",
                ));
            }
        }
        if let Some(port) = cfg.port {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            local_port = Some(listener.local_addr()?.port());
            listener.set_nonblocking(true)?;
            listeners.push(Listener::Tcp(listener));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs a --socket path or a --port",
            ));
        }
        Ok(Server { cfg, listeners, local_port })
    }

    /// The bound TCP port, when a TCP listener was requested (resolves
    /// `--port 0`).
    pub fn local_port(&self) -> Option<u16> {
        self.local_port
    }

    /// Serves until `shutdown` is cancelled: accept loops stop, drivers
    /// resolve their deferred admissions, queued jobs drain onto still-
    /// open connections, the journal is compacted, and the tally is
    /// returned.
    pub fn run(self, shutdown: &CancelToken) -> io::Result<ServeStats> {
        let cache = match &self.cfg.cache_dir {
            Some(dir) => ResultCache::open(dir)?.with_observer(self.cfg.obs.clone()),
            None => ResultCache::in_memory(),
        };
        let queue = Queue::new(self.cfg.max_queue);
        let counters = Counters::default();
        let metrics = LiveMetrics::new();
        let label_seq = AtomicU64::new(0);
        let cfg = &self.cfg;
        let io_threads = cfg.io_threads.max(1);
        // Accepted streams round-robin into per-driver inboxes; each
        // driver owns its connections outright from adoption to cull.
        let injectors: Vec<Mutex<Vec<Stream>>> =
            (0..io_threads).map(|_| Mutex::new(Vec::new())).collect();
        let bells: Vec<Arc<Doorbell>> = (0..io_threads).map(|_| Arc::new(Doorbell::new())).collect();
        let next_driver = AtomicUsize::new(0);
        // Drivers that have stopped producing admissions (shutdown seen,
        // waiting list empty): once all have, the queue can close.
        let quiesced = AtomicUsize::new(0);
        let shared = Shared {
            queue: &queue,
            cache: &cache,
            counters: &counters,
            metrics: &metrics,
            cfg,
            started: Instant::now(),
        };
        let shared = &shared;

        std::thread::scope(|s| {
            for _ in 0..cfg.jobs.max(1) {
                s.spawn(|| worker_loop(shared, &label_seq));
            }
            for (injector, bell) in injectors.iter().zip(&bells) {
                let quiesced = &quiesced;
                s.spawn(move || driver_loop(injector, bell, shared, shutdown, quiesced));
            }
            for listener in &self.listeners {
                let injectors = &injectors;
                let bells = &bells;
                let next_driver = &next_driver;
                s.spawn(move || {
                    while !shutdown.is_cancelled() {
                        match listener.accept() {
                            Ok(stream) => {
                                if let Some(action) = kiss_fault::hit(ACCEPT_POINT) {
                                    note_fault(&cfg.obs, ACCEPT_POINT, action);
                                    match action {
                                        // The connection vanishes as if the
                                        // peer dropped mid-handshake.
                                        Action::Error | Action::Truncate(_) => continue,
                                        Action::Panic => {
                                            panic!("kiss-fault: injected panic at {ACCEPT_POINT}")
                                        }
                                        Action::Delay(d) => std::thread::sleep(d),
                                    }
                                }
                                if stream.prepare().is_err() {
                                    continue;
                                }
                                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                                let ix = next_driver.fetch_add(1, Ordering::Relaxed)
                                    % injectors.len();
                                injectors[ix].lock().expect("injector lock").push(stream);
                                bells[ix].ring();
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            // Transient accept failures (e.g. the peer
                            // vanished mid-handshake) are not fatal.
                            Err(_) => std::thread::sleep(ACCEPT_POLL),
                        }
                    }
                });
            }
            // The scope body itself coordinates the drain: once shutdown
            // is requested and every driver has resolved its deferred
            // admissions, close the queue so workers exit after the
            // backlog empties (drivers keep flushing those answers).
            while !shutdown.is_cancelled() {
                std::thread::sleep(ACCEPT_POLL);
            }
            while quiesced.load(Ordering::SeqCst) < io_threads {
                std::thread::sleep(Duration::from_millis(5));
            }
            queue.close();
        });

        // Drain-time housekeeping: fold the append-heavy journal down to
        // one record per entry so restarts replay a minimal file. Best
        // effort — a compaction failure leaves the journal valid.
        let _ = cache.compact();

        #[cfg(unix)]
        if let Some(path) = &self.cfg.socket {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeStats {
            requests: counters.requests.load(Ordering::SeqCst),
            cache_hits: counters.hits.load(Ordering::SeqCst),
            cache_misses: counters.misses.load(Ordering::SeqCst),
            shed: counters.shed.load(Ordering::SeqCst),
        })
    }
}

fn note_fault(obs: &Obs, point: &str, action: Action) {
    obs.emit(|_| Event::FaultInjected {
        point: point.to_string(),
        action: action.name().to_string(),
    });
}

/// One connection owned by a driver: the nonblocking socket plus its
/// framing buffers. `shared` is the handle workers answer through.
struct Conn {
    stream: Stream,
    shared: Arc<ConnShared>,
    /// Unframed inbound bytes.
    rbuf: Vec<u8>,
    /// How far `rbuf` has been scanned for a newline without finding
    /// one, so a large frame arriving in many reads is scanned once,
    /// not once per read.
    scanned: usize,
    /// Serialized responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Bytes discarded from a frame that outgrew [`MAX_FRAME_BYTES`]
    /// before its newline arrived; the frame is answered with one
    /// error once the newline shows up.
    discarded: usize,
    /// EOF seen (or shutdown): no more reads, but queued answers still
    /// flush.
    read_closed: bool,
    /// The socket is gone (write error, injected fault): cull now.
    dead: bool,
    /// Stop serializing new responses, die once `wbuf` flushes (the
    /// torn-write fault path).
    poisoned: bool,
}

impl Conn {
    fn adopt(stream: Stream, metrics: &LiveMetrics, bell: &Arc<Doorbell>) -> Conn {
        metrics.conns.inc();
        Conn {
            stream,
            shared: Arc::new(ConnShared::new(bell.clone())),
            rbuf: Vec::new(),
            scanned: 0,
            wbuf: Vec::new(),
            discarded: 0,
            read_closed: false,
            dead: false,
            poisoned: false,
        }
    }

    /// One driver visit: read what the socket has, frame and dispatch
    /// it, then flush whatever the outbox and `wbuf` hold. Returns
    /// `(read_progress, any_progress)` — the driver polls hot only
    /// after inbound activity, because outbound work announces itself
    /// through the doorbell.
    fn pump(
        &mut self,
        shared: &Shared<'_>,
        waiting: &mut VecDeque<Waiting>,
        shutdown: &CancelToken,
    ) -> (bool, bool) {
        let mut progress = false;
        if shutdown.is_cancelled() {
            self.read_closed = true;
        }
        if !self.read_closed && !self.dead {
            let mut chunk = [0u8; 32 * 1024];
            for _ in 0..READS_PER_PUMP {
                let mut n = match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                };
                if let Some(action) = kiss_fault::hit(READ_POINT) {
                    note_fault(&shared.cfg.obs, READ_POINT, action);
                    match action {
                        // The peer is treated as gone mid-read; answers
                        // already in flight still flush.
                        Action::Error => {
                            self.read_closed = true;
                            break;
                        }
                        Action::Panic => panic!("kiss-fault: injected panic at {READ_POINT}"),
                        Action::Delay(d) => std::thread::sleep(d),
                        // A short read: only the chunk's head arrived.
                        Action::Truncate(cut) => n = n.min(cut.max(1)),
                    }
                }
                progress = true;
                self.shared.activity.touch();
                self.rbuf.extend_from_slice(&chunk[..n]);
                self.dispatch_lines(shared, waiting);
            }
        }
        let flushed = self.flush(shared);
        (progress, progress | flushed)
    }

    /// Splits complete lines out of `rbuf` and handles each frame.
    fn dispatch_lines(&mut self, shared: &Shared<'_>, waiting: &mut VecDeque<Waiting>) {
        while let Some(off) = self.rbuf[self.scanned..].iter().position(|&b| b == b'\n') {
            let pos = self.scanned + off;
            let rest = self.rbuf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut self.rbuf, rest);
            self.scanned = 0;
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if self.discarded > 0 {
                let err = FrameError::Oversized { bytes: self.discarded + line.len() };
                self.shared.send(Outgoing {
                    response: Response::error("", err.message()),
                    span: None,
                    retires: false,
                });
                self.discarded = 0;
                continue;
            }
            if line.is_empty() {
                continue;
            }
            let text = String::from_utf8_lossy(&line);
            handle_frame(&text, &self.shared, shared, waiting);
        }
        self.scanned = self.rbuf.len();
        // No newline yet: a frame past the cap can never become valid,
        // so stop buffering it.
        if self.rbuf.len() > MAX_FRAME_BYTES {
            self.discarded += self.rbuf.len();
            self.rbuf.clear();
            self.scanned = 0;
        }
    }

    /// Serializes queued outbox responses into `wbuf` (opening their
    /// `reply` spans) and pushes `wbuf` into the socket.
    fn flush(&mut self, shared: &Shared<'_>) -> bool {
        let mut progress = false;
        let obs = &shared.cfg.obs;
        while !self.dead && !self.poisoned {
            let next = self.shared.outbox.lock().expect("outbox lock").pop_front();
            let Some(out) = next else { break };
            if let Some(action) = kiss_fault::hit(WRITE_POINT) {
                note_fault(obs, WRITE_POINT, action);
                match action {
                    // A broken pipe: this response (and the rest of the
                    // stream) never reaches the peer.
                    Action::Error => {
                        self.retire(&out);
                        self.dead = true;
                        break;
                    }
                    Action::Panic => panic!("kiss-fault: injected panic at {WRITE_POINT}"),
                    Action::Delay(d) => std::thread::sleep(d),
                    Action::Truncate(cut) => {
                        // A torn response: its head flushes, then the
                        // connection dies.
                        let line = out.response.to_json();
                        let cut = cut.min(line.len());
                        self.wbuf.extend_from_slice(&line.as_bytes()[..cut]);
                        self.retire(&out);
                        self.poisoned = true;
                        break;
                    }
                }
            }
            // The reply span covers the serialize + socket hand-off of
            // this response.
            let reply_span = out.span.map(|(trace, parent)| Span::open(obs, trace, parent, "reply"));
            self.wbuf.extend_from_slice(out.response.to_json().as_bytes());
            self.wbuf.push(b'\n');
            drop(reply_span);
            self.retire(&out);
            progress = true;
        }
        while !self.wbuf.is_empty() && !self.dead {
            match self.stream.write(&self.wbuf) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.wbuf.drain(..n);
                    self.shared.activity.touch();
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.poisoned && self.wbuf.is_empty() {
            self.dead = true;
        }
        progress
    }

    /// Retires one pending job slot once its answer has been handed to
    /// the socket (or provably never will be), so the idle accounting
    /// never wedges a connection open.
    fn retire(&self, out: &Outgoing) {
        if out.retires {
            self.shared.activity.pending.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Whether the driver should drop this connection.
    fn finished(&self, shared: &Shared<'_>) -> bool {
        if self.dead {
            return true;
        }
        let quiet = self.shared.activity.is_quiet();
        let flushed = self.wbuf.is_empty()
            && self.shared.outbox.lock().expect("outbox lock").is_empty();
        if self.read_closed && quiet && flushed {
            return true;
        }
        if let Some(idle) = shared.cfg.idle_timeout {
            if quiet && flushed && self.shared.activity.idle_for() >= idle {
                return true;
            }
        }
        false
    }
}

/// One driver thread: multiplexes its connections until shutdown has
/// been seen, deferred admissions have resolved, and every connection
/// has drained.
fn driver_loop(
    injector: &Mutex<Vec<Stream>>,
    bell: &Arc<Doorbell>,
    shared: &Shared<'_>,
    shutdown: &CancelToken,
    quiesced: &AtomicUsize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut waiting: VecDeque<Waiting> = VecDeque::new();
    let mut announced = false;
    let mut idle_sleep = DRIVE_MIN_SLEEP;
    loop {
        // Inbound activity (new connections, admissions resolving,
        // bytes read) resets the backoff: more is probably coming and
        // only polling will see it. Outbound progress alone does not —
        // the next completion rings the bell, so sleeping long costs
        // no latency and spares the CPU for the workers producing it.
        let mut inbound = false;
        let mut progress = false;
        for stream in injector.lock().expect("injector lock").drain(..) {
            conns.push(Conn::adopt(stream, shared.metrics, bell));
            inbound = true;
        }
        inbound |= pump_waiting(&mut waiting, shared);
        for conn in &mut conns {
            let (read, any) = conn.pump(shared, &mut waiting, shutdown);
            inbound |= read;
            progress |= any;
        }
        progress |= inbound;
        conns.retain(|conn| {
            let done = conn.finished(shared);
            if done {
                shared.metrics.conns.dec();
            }
            !done
        });
        if shutdown.is_cancelled() && waiting.is_empty() && !announced {
            // No reads happen after shutdown, so the waiting list cannot
            // refill: this driver will never admit another job.
            announced = true;
            quiesced.fetch_add(1, Ordering::SeqCst);
        }
        if announced && conns.is_empty() {
            return;
        }
        if inbound {
            idle_sleep = DRIVE_MIN_SLEEP;
        }
        if progress {
            // Stay hot but let peers run: on a machine with fewer
            // cores than threads, a driver that loops without yielding
            // starves the very clients (and workers) it is serving
            // until the scheduler preempts it.
            std::thread::yield_now();
        } else {
            bell.wait(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(DRIVE_MAX_SLEEP);
        }
    }
}

/// Retries the driver's deferred admissions in arrival order and sheds
/// the ones whose deadline passed. Returns whether anything resolved.
fn pump_waiting(waiting: &mut VecDeque<Waiting>, shared: &Shared<'_>) -> bool {
    let mut progress = false;
    while let Some(entry) = waiting.pop_front() {
        let Waiting { job, deadline, recv_span } = entry;
        // The booking ids outlive the job's move into the queue.
        let request_id = job.request.id.clone();
        let (trace, queued_span) = (job.trace, job.queued_span);
        match shared.queue.try_push(*job) {
            Ok(()) => {
                book_admission(request_id, trace, queued_span, recv_span, shared);
                progress = true;
            }
            Err(PushError::Full(job)) => {
                // The deadline sheds even while the queue stays full.
                if Instant::now() >= deadline {
                    shed(job, recv_span, shared);
                    progress = true;
                    continue;
                }
                // Still full, still in time: later entries would only
                // see the same answer, so restore the head and stop.
                waiting.push_front(Waiting { job, deadline, recv_span });
                break;
            }
            Err(PushError::Closed(job)) => {
                shed(job, recv_span, shared);
                progress = true;
            }
        }
    }
    progress
}

/// Books an admitted job: the miss counter, the `cache_miss` event,
/// and the `queued` span open (the popping worker emits its close).
fn book_admission(request_id: String, trace: TraceId, queued_span: u64, recv_span: u64, shared: &Shared<'_>) {
    shared.counters.misses.fetch_add(1, Ordering::SeqCst);
    shared.cfg.obs.emit(|_| Event::CacheMiss { request: request_id });
    shared.cfg.obs.emit(|_| Event::SpanOpen {
        trace: trace.to_hex(),
        span: queued_span,
        parent: recv_span,
        name: "queued".to_string(),
        request: None,
    });
}

/// Sheds a job with the typed `overloaded` response.
fn shed(job: Box<Job>, recv_span: u64, shared: &Shared<'_>) {
    shared.counters.shed.fetch_add(1, Ordering::SeqCst);
    let depth = shared.queue.depth();
    shared.cfg.obs.emit(|_| Event::RequestShed {
        request: job.request.id.clone(),
        queue_depth: depth,
    });
    shared.cfg.obs.emit(|_| Event::RequestDone {
        request: job.request.id.clone(),
        verdict: "overloaded".to_string(),
        wall_ms: job.received.elapsed().as_millis() as u64,
        queue_depth: depth,
    });
    let trace = job.trace;
    job.reply.send(Outgoing {
        response: Response::overloaded(job.request.id, depth),
        span: Some((trace, recv_span)),
        retires: true,
    });
}

/// Decodes and dispatches one inbound frame: a protocol error, a
/// single request, or a batch fanning into its entries.
fn handle_frame(
    line: &str,
    conn: &Arc<ConnShared>,
    shared: &Shared<'_>,
    waiting: &mut VecDeque<Waiting>,
) {
    match decode_frame(line) {
        Err(e) => {
            conn.send(Outgoing {
                response: Response::error("", e.message()),
                span: None,
                retires: false,
            });
        }
        Ok(Frame::Single(request)) => handle_request(request, conn, shared, waiting),
        Ok(Frame::Batch(batch)) => {
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            for entry in batch.entries {
                handle_request(entry, conn, shared, waiting);
            }
        }
    }
}

/// Answers one request: status, metrics, cache hit, admission, or a
/// parked deferred admission.
fn handle_request(
    request: Request,
    conn: &Arc<ConnShared>,
    shared: &Shared<'_>,
    waiting: &mut VecDeque<Waiting>,
) {
    let Shared { queue, cache, counters, metrics, cfg, started } = *shared;
    // Status is control-plane: answered inline, never queued, and kept
    // out of the request/cache accounting so the balance equation
    // (requests = hits + misses + shed) only covers checking ops.
    if request.op == Op::Status {
        let detail = format!(
            "queue_depth={} cache_entries={} uptime_ms={} requests={} hits={} misses={} shed={}",
            queue.depth(),
            cache.len() as u64,
            started.elapsed().as_millis(),
            counters.requests.load(Ordering::SeqCst),
            counters.hits.load(Ordering::SeqCst),
            counters.misses.load(Ordering::SeqCst),
            counters.shed.load(Ordering::SeqCst),
        );
        conn.send(Outgoing {
            response: Response {
                id: request.id,
                verdict: "ok".to_string(),
                detail,
                steps: 0,
                states: 0,
                cache: CacheStatus::None,
            },
            span: None,
            retires: false,
        });
        return;
    }
    // Metrics is control-plane too: the full snapshot travels in the
    // response detail, and the scrape itself never shows up in the
    // numbers it reports.
    if request.op == Op::Metrics {
        let (shard_acquires, shard_contended) = cache.lock_stats();
        let snap = ServeSnapshot {
            uptime_ms: started.elapsed().as_millis() as u64,
            queue_depth: queue.depth(),
            queue_peak: queue.peak(),
            in_flight: metrics.in_flight.get(),
            conns_open: metrics.conns.get(),
            conns_peak: metrics.conns.peak(),
            accepted: counters.accepted.load(Ordering::Relaxed),
            admission_waits: counters.admission_waits.load(Ordering::Relaxed),
            batches: counters.batches.load(Ordering::Relaxed),
            cache_entries: cache.len() as u64,
            journal_records: cache.journal_records() as u64,
            journal_bytes: cache.journal_bytes(),
            compactions: cache.compactions(),
            cache_shards: cache.shard_count() as u64,
            shard_acquires,
            shard_contended,
            requests: counters.requests.load(Ordering::SeqCst),
            hits: counters.hits.load(Ordering::SeqCst),
            misses: counters.misses.load(Ordering::SeqCst),
            shed: counters.shed.load(Ordering::SeqCst),
            faults: kiss_fault::total_fired(),
            latency: metrics.registry.snapshot().histograms,
        };
        conn.send(Outgoing {
            response: Response {
                id: request.id,
                verdict: "ok".to_string(),
                detail: snap.to_json(),
                steps: 0,
                states: 0,
                cache: CacheStatus::None,
            },
            span: None,
            retires: false,
        });
        return;
    }
    let received = Instant::now();
    counters.requests.fetch_add(1, Ordering::SeqCst);
    // The request's trace: client-minted when present, otherwise fresh.
    // `recv` is the root span; it closes when this function returns
    // (the job, if any, carries the span ids it needs onward).
    let trace = if request.trace.is_none() { TraceId::fresh() } else { request.trace };
    let recv = Span::open_for_request(&cfg.obs, trace, "recv", &request.id);
    cfg.obs.emit(|_| Event::RequestReceived {
        request: request.id.clone(),
        queue_depth: queue.depth(),
    });
    let key = request.cache_key();
    if !request.no_cache {
        if let Some(v) = cache.lookup(key) {
            counters.hits.fetch_add(1, Ordering::SeqCst);
            metrics.hit_ms.record(received.elapsed().as_millis() as u64);
            cfg.obs.emit(|_| Event::CacheHit { request: request.id.clone() });
            cfg.obs.emit(|_| Event::RequestDone {
                request: request.id.clone(),
                verdict: v.verdict.clone(),
                wall_ms: 0,
                queue_depth: queue.depth(),
            });
            conn.send(Outgoing {
                response: Response {
                    id: request.id,
                    verdict: v.verdict,
                    detail: v.detail,
                    steps: v.steps,
                    states: v.states,
                    cache: CacheStatus::Hit,
                },
                span: Some((trace, recv.id())),
                retires: false,
            });
            return;
        }
    }
    // The job moves into the queue (or the waiting list) on success;
    // keep the ids for the booking that happens after admission. The
    // `queued` span id is reserved now but only opened once admission
    // succeeds; the popping worker emits its close. The pending slot
    // is taken now — a job waiting for admission is in flight as far
    // as the idle deadline is concerned.
    let request_id = request.id.clone();
    let queued_span = next_span_id();
    let recv_span = recv.id();
    conn.activity.pending.fetch_add(1, Ordering::SeqCst);
    let job = Job { key, received, reply: conn.clone(), trace, queued_span, request };
    let admission = match kiss_fault::hit(ENQUEUE_POINT) {
        Some(action) => {
            note_fault(&cfg.obs, ENQUEUE_POINT, action);
            match action {
                // Admission refused outright: the request is shed even
                // though the queue may have room.
                Action::Error | Action::Truncate(_) => Err(PushError::Full(Box::new(job))),
                Action::Panic => panic!("kiss-fault: injected panic at {ENQUEUE_POINT}"),
                Action::Delay(d) => {
                    std::thread::sleep(d);
                    queue.try_push(job)
                }
            }
        }
        None => queue.try_push(job),
    };
    match admission {
        Ok(()) => book_admission(request_id, trace, queued_span, recv_span, shared),
        Err(PushError::Full(job)) => {
            if cfg.admission_wait.is_zero() {
                shed(job, recv_span, shared);
            } else {
                // Park it: the driver retries every iteration and sheds
                // at the deadline, without ever blocking its other
                // connections behind this one's backpressure.
                counters.admission_waits.fetch_add(1, Ordering::Relaxed);
                waiting.push_back(Waiting {
                    job,
                    deadline: received + cfg.admission_wait,
                    recv_span,
                });
            }
        }
        Err(PushError::Closed(job)) => shed(job, recv_span, shared),
    }
}

/// Pops jobs until the queue closes: execute, cache, answer.
fn worker_loop(shared: &Shared<'_>, seq: &AtomicU64) {
    let Shared { queue, cache, metrics, cfg, .. } = *shared;
    while let Some(job) = queue.pop() {
        // The `queued` span (opened at admission) ends here: its wall
        // time is exactly the queue wait.
        cfg.obs.emit(|_| Event::SpanClose {
            trace: job.trace.to_hex(),
            span: job.queued_span,
            name: "queued".to_string(),
            wall_ms: job.received.elapsed().as_millis() as u64,
        });
        metrics.in_flight.inc();
        let check_span = Span::open(&cfg.obs, job.trace, job.queued_span, "check");
        let check_id = check_span.id();
        let (verdict, cacheable) = execute(&job.request, cfg, seq, job.trace, check_id);
        check_span.close();
        metrics.in_flight.dec();
        if cacheable {
            cache.insert(job.key, verdict.clone());
        }
        let wall_ms = job.received.elapsed().as_millis() as u64;
        metrics.check_ms.record(wall_ms);
        cfg.obs.emit(|_| Event::RequestDone {
            request: job.request.id.clone(),
            verdict: verdict.verdict.clone(),
            wall_ms,
            queue_depth: queue.depth(),
        });
        job.reply.send(Outgoing {
            response: Response {
                id: job.request.id,
                verdict: verdict.verdict,
                detail: verdict.detail,
                steps: verdict.steps,
                states: verdict.states,
                cache: CacheStatus::Miss,
            },
            span: Some((job.trace, check_id)),
            retires: true,
        });
    }
}

/// Runs one request under supervision. The second return value says
/// whether the verdict may enter the cache: verdicts that depend on
/// wall-clock or server state (deadline/cancellation inconclusives,
/// crashes, setup failures) must not.
fn execute(
    request: &Request,
    cfg: &ServeConfig,
    seq: &AtomicU64,
    trace: TraceId,
    parent: u64,
) -> (CachedVerdict, bool) {
    let error = |detail: String| CachedVerdict {
        verdict: "error".to_string(),
        detail,
        steps: 0,
        states: 0,
    };
    let program = match kiss_lang::parse_and_lower(&request.source) {
        Ok(program) => program,
        Err(e) => return (error(format!("parse: {e}")), false),
    };
    // Resolve the op's argument before supervising, so a bad target or
    // formula is a typed request error — never a crashed verdict.
    enum Work {
        Check,
        Race(RaceTarget),
        Ltl(kiss_ltl::Formula),
    }
    let work = match &request.op {
        Op::Check => Work::Check,
        Op::Race { target } => match RaceTarget::resolve(&program, target) {
            Some(resolved) => Work::Race(resolved),
            None => return (error(format!("unknown race target `{target}`")), false),
        },
        Op::Ltl { formula } => {
            let formula = match kiss_ltl::parse(formula) {
                Ok(f) => f,
                Err(e) => return (error(format!("ltl: {e}")), false),
            };
            if let Err(name) = kiss_ltl::resolve_atoms(&program, &formula.atoms()) {
                return (error(format!("ltl: proposition `{name}` names no global")), false);
            }
            Work::Ltl(formula)
        }
        // Control-plane ops never reach the queue; guard against future
        // callers.
        Op::Status | Op::Metrics => {
            return (error("control-plane ops are not executable".to_string()), false)
        }
    };
    let mut budget = cfg.budget;
    if let Some(steps) = request.max_steps {
        budget.max_steps = steps;
    }
    if let Some(states) = request.max_states {
        budget.max_states = states as usize;
    }
    if let Some(ms) = request.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    // A process-unique label keeps check lifecycle events distinct even
    // when clients reuse request ids across submissions.
    let label = format!("{}#{}", request.id, seq.fetch_add(1, Ordering::Relaxed));
    // A fresh token, deliberately NOT the shutdown token: in-flight
    // checks run to completion during a drain.
    let supervisor = Supervisor::new(budget)
        .with_retries(cfg.retries)
        .with_cancel(CancelToken::new())
        .with_observer(cfg.obs.clone());
    let run = supervisor.run_scoped(&label, |budget, cancel, obs| {
        if let Some(action) = kiss_fault::hit(WORKER_POINT) {
            note_fault(obs, WORKER_POINT, action);
            match action {
                // Both flavors surface as a panic here: the supervisor's
                // catch_unwind converts it into a `crashed` verdict that
                // is answered but never cached.
                Action::Error | Action::Panic => {
                    panic!("kiss-fault: injected {} at {WORKER_POINT}", action.name())
                }
                Action::Delay(d) => std::thread::sleep(d),
                Action::Truncate(_) => {}
            }
        }
        let kiss = Kiss::new()
            .with_max_ts(request.max_ts)
            .with_engine(request.engine)
            .with_store(request.store)
            .with_explore_jobs(request.explore_jobs)
            .with_budget(budget)
            .with_cancel(cancel)
            .with_observer(obs.clone())
            .with_trace(trace, parent)
            .with_validation(false);
        match &work {
            Work::Check => kiss.check_assertions(&program),
            Work::Race(target) => kiss.check_race(&program, *target),
            Work::Ltl(formula) => {
                kiss.check_ltl(&program, formula).expect("propositions pre-resolved")
            }
        }
    });
    match run.result {
        Supervised::Crashed { cause } => (
            CachedVerdict {
                verdict: "crashed".to_string(),
                detail: cause,
                steps: 0,
                states: 0,
            },
            false,
        ),
        Supervised::Completed(outcome) => {
            let (steps, states) =
                outcome.stats().map(|s| (s.steps(), s.states() as u64)).unwrap_or((0, 0));
            let (detail, cacheable) = detail_of(&outcome);
            (
                CachedVerdict {
                    verdict: outcome.verdict_str().to_string(),
                    detail,
                    steps,
                    states,
                },
                cacheable,
            )
        }
    }
}

/// A deterministic one-line detail for each outcome (no wall times, so
/// warm answers are byte-identical to cold ones), plus cacheability.
fn detail_of(outcome: &KissOutcome) -> (String, bool) {
    match outcome {
        KissOutcome::NoErrorFound(_) => ("no error found".to_string(), true),
        KissOutcome::AssertionViolation(report) => (
            format!(
                "assertion violation: {} threads, {} context switches",
                report.mapped.thread_count, report.mapped.context_switches
            ),
            true,
        ),
        KissOutcome::RaceDetected(report) => {
            let kind = |write: bool| if write { "write" } else { "read" };
            (
                format!(
                    "race: {} at {} vs {} at {}",
                    kind(report.first.is_write),
                    report.first.span,
                    kind(report.second.is_write),
                    report.second.span
                ),
                true,
            )
        }
        KissOutcome::LivenessViolated(report) => (
            if report.cycle.is_empty() {
                format!(
                    "liveness violation of `{}`: terminating run, {}-step stem",
                    report.formula,
                    report.stem.len()
                )
            } else {
                format!(
                    "liveness violation of `{}`: {}-step stem, {}-step cycle",
                    report.formula,
                    report.stem.len(),
                    report.cycle.len()
                )
            },
            true,
        ),
        KissOutcome::Inconclusive { reason, .. } => (
            format!("resource bound exceeded on {}", reason.as_str()),
            // Steps/states/memory bounds are functions of the request
            // alone; deadline and cancellation depend on the machine.
            matches!(reason, BoundReason::Steps | BoundReason::States | BoundReason::Memory),
        ),
        KissOutcome::RuntimeError(e) => (format!("runtime error: {e}"), true),
        KissOutcome::TransformFailed(e) => (format!("transform failed: {e}"), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str) -> (Job, Arc<ConnShared>) {
        let conn = Arc::new(ConnShared::new(Arc::new(Doorbell::new())));
        let job = Job {
            request: Request::check(id, "void main() { skip; }"),
            key: 0,
            received: Instant::now(),
            reply: conn.clone(),
            trace: TraceId::NONE,
            queued_span: 0,
        };
        (job, conn)
    }

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let queue = Queue::new(8);
        let (a, _conn_a) = job("a");
        let (b, _conn_b) = job("b");
        assert!(queue.try_push(a).is_ok());
        assert!(queue.try_push(b).is_ok());
        assert_eq!(queue.depth(), 2);
        queue.close();
        assert_eq!(queue.pop().unwrap().request.id, "a");
        assert_eq!(queue.pop().unwrap().request.id, "b");
        assert!(queue.pop().is_none(), "closed and drained");
        let (c, conn_c) = job("c");
        let Err(PushError::Closed(rejected)) = queue.try_push(c) else {
            panic!("closed queue accepted a job")
        };
        rejected.reply.send(Outgoing {
            response: Response::error(rejected.request.id, "draining"),
            span: None,
            retires: false,
        });
        let out = conn_c.outbox.lock().unwrap().pop_front().unwrap();
        assert_eq!(out.response.verdict, "error");
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let queue = Queue::new(1);
        let (a, _conn_a) = job("a");
        assert!(queue.try_push(a).is_ok());
        let (b, _conn_b) = job("b");
        let before = Instant::now();
        let Err(PushError::Full(rejected)) = queue.try_push(b) else {
            panic!("full queue must reject immediately")
        };
        // Nonblocking: the driver parks the job itself; the queue never
        // holds the caller.
        assert!(before.elapsed() < Duration::from_millis(100));
        assert_eq!(rejected.request.id, "b");
        // The queue itself is untouched: "a" still waits for a worker.
        assert_eq!(queue.depth(), 1);
        // A pop frees the slot and the retry succeeds.
        assert_eq!(queue.pop().unwrap().request.id, "a");
        assert!(queue.try_push(*rejected).is_ok());
        assert_eq!(queue.peak(), 1);
    }

    #[test]
    fn execute_answers_check_and_race_requests() {
        let cfg = ServeConfig { budget: Budget::small(), ..ServeConfig::default() };
        let seq = AtomicU64::new(0);
        let run = |req: &Request| execute(req, &cfg, &seq, TraceId::NONE, 0);
        let req = Request::check("t", "int x;\nvoid main() { x = 1; assert x == 1; }");
        let (verdict, cacheable) = run(&req);
        assert_eq!(verdict.verdict, "pass");
        assert_eq!(verdict.detail, "no error found");
        assert!(cacheable);
        assert!(verdict.steps > 0);

        let racy = "int g;\nvoid writer() { g = 1; }\nvoid main() { async writer(); g = 2; }";
        let (verdict, cacheable) = run(&Request::race("t", racy, "g"));
        assert_eq!(verdict.verdict, "race");
        assert!(verdict.detail.starts_with("race: "), "{}", verdict.detail);
        assert!(cacheable);

        let (verdict, cacheable) = run(&Request::race("t", racy, "nope"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.contains("unknown race target"));
        assert!(!cacheable);

        let (verdict, cacheable) = run(&Request::check("t", "not a program"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.starts_with("parse: "));
        assert!(!cacheable);
    }

    #[test]
    fn execute_answers_ltl_requests() {
        let cfg = ServeConfig { budget: Budget::small(), ..ServeConfig::default() };
        let seq = AtomicU64::new(0);
        let run = |req: &Request| execute(req, &cfg, &seq, TraceId::NONE, 0);
        let stuck = "int locked;\nvoid worker() { skip; }\n\
                     void main() { locked = 1; async worker(); while (locked == 1) { skip; } }";
        let released = "int locked;\nvoid worker() { locked = 0; }\n\
                        void main() { locked = 1; async worker(); while (locked == 1) { skip; } }";
        let formula = "G (locked -> F !locked)";

        let (verdict, cacheable) = run(&Request::ltl("t", stuck, formula));
        assert_eq!(verdict.verdict, "liveness");
        assert!(verdict.detail.starts_with("liveness violation of `G"), "{}", verdict.detail);
        assert!(verdict.detail.contains("cycle"), "{}", verdict.detail);
        assert!(cacheable);
        assert!(verdict.steps > 0);

        let (verdict, cacheable) = run(&Request::ltl("t", released, formula));
        assert_eq!(verdict.verdict, "pass");
        assert!(cacheable);

        // A malformed formula and an unknown proposition are typed
        // request errors naming the offender, never crashed verdicts.
        let (verdict, cacheable) = run(&Request::ltl("t", released, "G (locked ->"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.starts_with("ltl: "), "{}", verdict.detail);
        assert!(!cacheable);
        let (verdict, cacheable) = run(&Request::ltl("t", released, "F missing"));
        assert_eq!(verdict.verdict, "error");
        assert!(verdict.detail.contains("`missing`"), "{}", verdict.detail);
        assert!(!cacheable);
    }

    #[test]
    fn deadline_inconclusives_are_not_cacheable() {
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Deadline,
        };
        assert!(!detail_of(&outcome).1);
        let outcome = KissOutcome::Inconclusive {
            stats: Default::default(),
            reason: BoundReason::Steps,
        };
        assert!(detail_of(&outcome).1);
    }

    #[test]
    fn idle_accounting_only_fires_when_quiet() {
        let activity = ConnActivity::new();
        activity.touch();
        assert!(activity.is_quiet());
        assert!(activity.idle_for() < Duration::from_millis(100));
        activity.pending.fetch_add(1, Ordering::SeqCst);
        assert!(!activity.is_quiet(), "in-flight work suppresses the idle deadline");
        activity.pending.fetch_sub(1, Ordering::SeqCst);
        assert!(activity.is_quiet());
    }
}
