//! Chaos suite: the serving stack under deterministic fault injection.
//!
//! Every test arms `kiss-fault` policies and asserts the robustness
//! invariants the subsystem promises:
//!
//! * **no wrong or stale verdicts** — a faulted run answers every
//!   completed request with the same verdict a fault-free run would;
//! * **no deadlocks** — every test drains and joins the server;
//! * **the cache survives restarts** even when the journal was torn
//!   mid-record by a fault;
//! * **accounting balances** — `requests = hits + misses + shed` holds
//!   on the server tally and on the aggregated `kiss-obs` report.
//!
//! The `kiss-fault` registry is process-global, so the whole suite
//! serializes on one mutex and resets the registry at each test entry.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use kiss_fault::{Action, Policy, Trigger};
use kiss_obs::{Aggregator, Obs};
use kiss_seq::{Budget, CancelToken};
use kiss_serve::{
    submit_batch, submit_batch_with, Endpoint, Request, ServeConfig, ServeStats, Server,
    SubmitOptions,
};

static CHAOS: Mutex<()> = Mutex::new(());

/// Serializes the suite and clears any leftover fault bindings.
fn arm_chaos() -> MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|poison| poison.into_inner());
    kiss_fault::reset();
    guard
}

struct ChaosServer {
    socket: PathBuf,
    shutdown: CancelToken,
    handle: Option<std::thread::JoinHandle<ServeStats>>,
}

impl ChaosServer {
    fn boot(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> ChaosServer {
        let socket = std::env::temp_dir()
            .join(format!("kiss-chaos-{tag}-{}.sock", std::process::id()));
        let mut cfg = ServeConfig {
            socket: Some(socket.clone()),
            jobs: 2,
            budget: Budget::small(),
            ..ServeConfig::default()
        };
        tweak(&mut cfg);
        let server = Server::bind(cfg).expect("bind unix socket");
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token).expect("serve"));
        ChaosServer { socket, shutdown, handle: Some(handle) }
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::Unix(self.socket.clone())
    }

    fn stop(mut self) -> ServeStats {
        self.shutdown.cancel();
        self.handle.take().expect("still running").join().expect("server thread")
    }
}

impl Drop for ChaosServer {
    fn drop(&mut self) {
        self.shutdown.cancel();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kiss-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch() -> Vec<Request> {
    let racy = "int g;\nvoid writer() { g = 1; }\nvoid main() { async writer(); g = 2; }";
    let clean = "int x;\nvoid main() { x = 1; assert x == 1; }";
    let fails = "int y;\nvoid main() { y = 2; assert y == 3; }";
    vec![
        Request::race("racy", racy, "g"),
        Request::check("clean", clean),
        Request::check("fails", fails),
    ]
}

fn balance(stats: &ServeStats) {
    assert_eq!(
        stats.requests,
        stats.cache_hits + stats.cache_misses + stats.shed,
        "requests = hits + misses + shed must balance: {stats:?}"
    );
}

#[test]
fn fixed_seed_fault_schedule_reproduces_fault_free_verdicts() {
    let _chaos = arm_chaos();

    // Ground truth: a fault-free run.
    let server = ChaosServer::boot("truth", |_| {});
    let truth = submit_batch(&server.endpoint(), &batch()).expect("fault-free submit");
    balance(&server.stop());

    // The same batch under a seeded schedule of journal errors and read
    // delays — faults that can slow or un-cache work but never change a
    // verdict. Two independent faulted runs must both match the truth.
    for round in 0..2 {
        kiss_fault::reset();
        kiss_fault::configure("seed=42;serve.journal.append=error%60;serve.conn.read=delay(1)%30")
            .expect("valid fault spec");
        let server = ChaosServer::boot(&format!("seeded-{round}"), |_| {});
        let faulted = submit_batch(&server.endpoint(), &batch()).expect("faulted submit");
        for (t, f) in truth.responses.iter().zip(&faulted.responses) {
            assert_eq!(t.id, f.id);
            assert_eq!(t.verdict, f.verdict, "round {round}: verdict drifted under faults");
            assert_eq!(t.detail, f.detail, "round {round}: detail drifted under faults");
            assert_eq!((t.steps, t.states), (f.steps, f.states));
        }
        balance(&server.stop());
    }
    kiss_fault::reset();
}

#[test]
fn journal_torn_mid_record_still_revives_surviving_entries() {
    let _chaos = arm_chaos();
    let cache_dir = scratch_dir("torn-journal");

    // Two composed faults: the first executed request's record is torn
    // mid-write (jobs=1 makes that deterministic), AND the drain-time
    // compaction fails — otherwise compaction would rewrite the journal
    // from memory and heal the tear before the restart ever sees it.
    kiss_fault::set(
        "serve.journal.append",
        Policy { action: Action::Truncate(7), trigger: Trigger::Times(1) },
    );
    kiss_fault::set(
        "serve.journal.compact",
        Policy { action: Action::Error, trigger: Trigger::Always },
    );
    let server = ChaosServer::boot("tear", |cfg| {
        cfg.jobs = 1;
        cfg.cache_dir = Some(cache_dir.clone());
    });
    let cold = submit_batch(&server.endpoint(), &batch()).expect("cold submit");
    balance(&server.stop());
    kiss_fault::reset();

    // Restart fault-free. The torn head has no newline, so the next
    // append fused with it into one corrupt line: replay must skip that
    // line on its checksum (never half-parse it into a wrong verdict)
    // and revive the intact tail record.
    let server = ChaosServer::boot("revive", |cfg| {
        cfg.jobs = 1;
        cfg.cache_dir = Some(cache_dir.clone());
    });
    let warm = submit_batch(&server.endpoint(), &batch()).expect("post-restart submit");
    for (c, w) in cold.responses.iter().zip(&warm.responses) {
        assert_eq!(c.verdict, w.verdict, "a torn journal must never change a verdict");
        assert_eq!(c.detail, w.detail);
    }
    let stats = server.stop();
    balance(&stats);
    assert_eq!(
        (stats.cache_hits, stats.cache_misses),
        (1, 2),
        "the corrupt fused line re-executes; the intact record hits"
    );

    // The warm run drained cleanly, so compaction healed the journal:
    // a third boot replays a canonical file and answers all from cache.
    let server = ChaosServer::boot("healed", |cfg| {
        cfg.jobs = 1;
        cfg.cache_dir = Some(cache_dir.clone());
    });
    let healed = submit_batch(&server.endpoint(), &batch()).expect("post-heal submit");
    assert_eq!((healed.hits, healed.misses), (3, 0), "compaction healed the journal");
    balance(&server.stop());
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn a_worker_panic_is_isolated_answered_as_crashed_and_never_cached() {
    let _chaos = arm_chaos();
    kiss_fault::set(
        "serve.worker",
        Policy { action: Action::Panic, trigger: Trigger::Times(1) },
    );
    let server = ChaosServer::boot("panic", |cfg| cfg.jobs = 1);
    let request = [Request::check("boom", "int x;\nvoid main() { x = 1; assert x == 1; }")];

    let first = submit_batch(&server.endpoint(), &request).expect("faulted submit");
    assert_eq!(first.responses[0].verdict, "crashed", "{:?}", first.responses[0]);
    assert!(first.responses[0].detail.contains("kiss-fault"), "{}", first.responses[0].detail);

    // The panic budget (Times(1)) is spent; the same request now runs
    // clean — and MUST re-run: a crashed verdict may never be served
    // from the cache.
    let second = submit_batch(&server.endpoint(), &request).expect("recovered submit");
    assert_eq!(second.responses[0].verdict, "pass");
    assert_eq!(second.misses, 1, "the crashed verdict was not cached");

    let stats = server.stop();
    balance(&stats);
    assert_eq!(stats.requests, 2);
    kiss_fault::reset();
}

#[test]
fn a_saturated_queue_sheds_with_typed_overloaded_responses() {
    let _chaos = arm_chaos();
    // Every execution sleeps, the queue holds one job, and admission
    // gives up quickly: pipelining four distinct requests through one
    // connection must shed at least one of them.
    kiss_fault::set(
        "serve.worker",
        Policy { action: Action::Delay(Duration::from_millis(400)), trigger: Trigger::Always },
    );
    let server = ChaosServer::boot("saturate", |cfg| {
        cfg.jobs = 1;
        cfg.max_queue = 1;
        cfg.admission_wait = Duration::from_millis(50);
    });
    let requests: Vec<Request> = (0..4)
        .map(|i| {
            Request::check(
                format!("q{i}"),
                format!("int x;\nvoid main() {{ x = {i}; assert x == {i}; }}"),
            )
        })
        .collect();
    let outcome = submit_batch(&server.endpoint(), &requests).expect("saturating submit");

    let shed: Vec<_> =
        outcome.responses.iter().filter(|r| r.verdict == "overloaded").collect();
    assert!(!shed.is_empty(), "a saturated queue must shed: {:?}", outcome.responses);
    for response in &shed {
        assert!(
            response.detail.contains("queue full"),
            "sheds are typed, not generic errors: {response:?}"
        );
    }
    for response in &outcome.responses {
        assert!(
            response.verdict == "pass" || response.verdict == "overloaded",
            "no wrong verdicts under overload: {response:?}"
        );
    }

    let stats = server.stop();
    balance(&stats);
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.shed, shed.len() as u64);
    kiss_fault::reset();
}

#[test]
fn a_dropped_connection_is_survived_by_client_reconnect() {
    let _chaos = arm_chaos();
    // The first response write breaks the pipe; the resilient client
    // reconnects and re-asks the (idempotent) request.
    kiss_fault::set(
        "serve.conn.write",
        Policy { action: Action::Error, trigger: Trigger::Times(1) },
    );
    let server = ChaosServer::boot("drop", |_| {});
    // The broken pipe kills the writer thread but the socket stays open
    // through the reader's clone, so the client only notices via its
    // silence deadline — keep it short.
    let opts = SubmitOptions {
        retries: 3,
        backoff: Duration::from_millis(5),
        request_timeout: Some(Duration::from_millis(500)),
        ..SubmitOptions::default()
    };
    let request = [Request::check("durable", "int x;\nvoid main() { x = 1; assert x == 1; }")];
    let outcome =
        submit_batch_with(&server.endpoint(), &request, &opts).expect("resilient submit");
    assert_eq!(outcome.responses[0].verdict, "pass");
    assert!(outcome.retries >= 1, "the drop must have forced a reconnect");

    let stats = server.stop();
    balance(&stats);
    assert!(kiss_fault::total_fired() >= 1, "the write fault fired");
    kiss_fault::reset();
}

#[test]
fn idle_connections_without_inflight_work_are_closed() {
    let _chaos = arm_chaos();
    use std::io::Read;
    let server = ChaosServer::boot("idle", |cfg| {
        cfg.idle_timeout = Some(Duration::from_millis(150));
    });
    let mut stream =
        std::os::unix::net::UnixStream::connect(&server.socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    // Send nothing: the server must hang up on its own.
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("clean EOF from the idle reaper");
    assert_eq!(n, 0, "expected EOF, got {n} bytes");
    let stats = server.stop();
    assert_eq!(stats.requests, 0);
}

#[test]
fn request_accounting_balances_on_the_observed_report_under_chaos() {
    let _chaos = arm_chaos();
    // Faults on three layers at once: slow workers (forcing sheds), a
    // journal error, and an occasional read delay. The aggregated
    // kiss-obs report must still balance exactly and must record the
    // injections and sheds it saw.
    kiss_fault::configure(
        "seed=7;serve.worker=delay(300)*2;serve.journal.append=error*1;serve.conn.read=delay(1)%20",
    )
    .expect("valid fault spec");
    let agg = Aggregator::new();
    let server = ChaosServer::boot("balance", |cfg| {
        cfg.jobs = 1;
        cfg.max_queue = 1;
        cfg.admission_wait = Duration::from_millis(40);
        cfg.obs = Obs::new(agg.clone());
    });
    let requests: Vec<Request> = (0..5)
        .map(|i| {
            Request::check(
                format!("b{i}"),
                format!("int x;\nvoid main() {{ x = {i}; assert x == {i}; }}"),
            )
        })
        .collect();
    let outcome = submit_batch(&server.endpoint(), &requests).expect("chaotic submit");
    assert_eq!(outcome.responses.len(), 5, "every request is answered, shed or not");

    let stats = server.stop();
    balance(&stats);
    let report = agg.report();
    assert_eq!(report.requests, stats.requests);
    assert_eq!(report.cache_hits, stats.cache_hits);
    assert_eq!(report.cache_misses, stats.cache_misses);
    assert_eq!(report.requests_shed, stats.shed);
    assert_eq!(
        report.requests,
        report.cache_hits + report.cache_misses + report.requests_shed,
        "the observed report must balance: {}",
        report.to_json()
    );
    assert!(report.faults_injected >= 1, "the journal fault was observed");
    kiss_fault::reset();
}
