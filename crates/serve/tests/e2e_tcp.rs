//! End-to-end tests over a loopback TCP listener: the unix-socket
//! suite's warm/cold round-trip and bad-frame recovery, mirrored onto
//! the transport the e2e coverage otherwise never exercises.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use kiss_seq::{Budget, CancelToken};
use kiss_serve::{submit_batch, Endpoint, EntryCache, Request, ServeConfig, ServeStats, Server};

struct TestServer {
    port: u16,
    shutdown: CancelToken,
    handle: Option<std::thread::JoinHandle<ServeStats>>,
}

impl TestServer {
    fn boot() -> TestServer {
        let cfg = ServeConfig {
            port: Some(0),
            jobs: 2,
            budget: Budget::small(),
            ..ServeConfig::default()
        };
        let server = Server::bind(cfg).expect("bind loopback port");
        let port = server.local_port().expect("ephemeral port");
        let shutdown = CancelToken::new();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token).expect("serve"));
        TestServer { port, shutdown, handle: Some(handle) }
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::Tcp(format!("127.0.0.1:{}", self.port))
    }

    fn stop(mut self) -> ServeStats {
        self.shutdown.cancel();
        self.handle.take().expect("still running").join().expect("server thread")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.cancel();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn batch() -> Vec<Request> {
    let racy = "int g;\nvoid writer() { g = 1; }\nvoid main() { async writer(); g = 2; }";
    let clean = "int x;\nvoid main() { x = 1; assert x == 1; }";
    vec![
        Request::race("racy", racy, "g"),
        Request::check("clean", clean),
        Request::check("clean-again", clean), // dedups against `clean`
    ]
}

#[test]
fn second_submission_over_tcp_is_all_cache_hits_with_identical_verdicts() {
    let server = TestServer::boot();
    let endpoint = server.endpoint();

    let cold = submit_batch(&endpoint, &batch()).expect("cold submit");
    assert_eq!(cold.unique, 2, "identical sources dedup client-side");
    assert_eq!((cold.hits, cold.misses), (0, 2));
    assert_eq!(cold.entry_cache[2], EntryCache::Deduped);
    assert_eq!(cold.responses[0].verdict, "race");
    assert_eq!(cold.responses[1].verdict, "pass");

    let warm = submit_batch(&endpoint, &batch()).expect("warm submit");
    assert_eq!((warm.hits, warm.misses), (2, 0), "warm server answers from cache");
    for (c, w) in cold.responses.iter().zip(&warm.responses) {
        // Byte-identical verdicts: only the cache marker may differ.
        assert_eq!(c.id, w.id);
        assert_eq!(c.verdict, w.verdict);
        assert_eq!(c.detail, w.detail);
        assert_eq!((c.steps, c.states), (w.steps, w.states));
    }

    let stats = server.stop();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.requests, stats.cache_hits + stats.cache_misses);
}

#[test]
fn malformed_and_oversized_lines_get_error_responses_over_tcp() {
    let server = TestServer::boot();
    let mut stream = TcpStream::connect(("127.0.0.1", server.port)).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();

    // Not JSON at all.
    writeln!(stream, "this is not a frame").unwrap();
    stream.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"verdict\":\"error\""), "{line}");
    assert!(line.contains("malformed frame"), "{line}");

    // A frame far past the size cap, fed in chunks, then a valid
    // request to prove the connection survived.
    let huge = "x".repeat(kiss_serve::MAX_FRAME_BYTES + 64);
    stream.write_all(huge.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let valid = Request::check("after", "int x;\nvoid main() { x = 1; assert x == 1; }");
    writeln!(stream, "{}", valid.to_json()).unwrap();
    stream.flush().unwrap();

    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("oversized frame"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"id\":\"after\""), "{line}");
    assert!(line.contains("\"verdict\":\"pass\""), "{line}");
    drop(stream);
    let stats = server.stop();
    assert_eq!(stats.requests, 1, "only the valid frame counts as a request");
}
