//! Property tests of the wire protocol: arbitrary frames round-trip,
//! and arbitrary garbage is rejected without panicking.

use kiss_core::checker::Engine;
use kiss_obs::TraceId;
use kiss_seq::StoreKind;
use kiss_serve::protocol::{
    decode_request, decode_response, CacheStatus, FrameError, Op, Request, Response,
    MAX_FRAME_BYTES,
};
use proptest::prelude::*;
use proptest::BoxedStrategy;

fn opt_u64() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)]
}

/// Arbitrary requests: printable-unicode ids/sources/targets (quotes,
/// backslashes, and multi-byte characters included), every engine and
/// store, and each budget override present or absent.
fn request_strategy() -> BoxedStrategy<Request> {
    (
        ("\\PC*", "\\PC*", prop_oneof![Just(None), "\\PC*".prop_map(Some)]),
        (
            prop::sample::select(vec![Engine::Explicit, Engine::Summary, Engine::Bfs]),
            prop::sample::select(vec![StoreKind::Legacy, StoreKind::Cow]),
            0usize..4,
        ),
        (opt_u64(), opt_u64(), opt_u64(), any::<bool>(), 1usize..9),
        prop_oneof![Just(TraceId::NONE), (1u64..u64::MAX).prop_map(TraceId)],
    )
        .prop_map(
            |(
                (id, source, target),
                (engine, store, max_ts),
                (max_steps, max_states, timeout_ms, no_cache, explore_jobs),
                trace,
            )| {
                Request {
                    id,
                    op: match target {
                        Some(target) => Op::Race { target },
                        None => Op::Check,
                    },
                    source,
                    engine,
                    store,
                    max_ts,
                    max_steps,
                    max_states,
                    timeout_ms,
                    no_cache,
                    explore_jobs,
                    trace,
                }
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn request_frames_round_trip(request in request_strategy()) {
        let line = request.to_json();
        prop_assert!(!line.contains('\n'), "frames must be one line: {line}");
        prop_assert_eq!(decode_request(&line), Ok(request));
    }

    #[test]
    fn equal_round_tripped_requests_keep_their_cache_key(request in request_strategy()) {
        let decoded = decode_request(&request.to_json()).unwrap();
        prop_assert_eq!(decoded.cache_key(), request.cache_key());
    }

    #[test]
    fn response_frames_round_trip(
        (id, verdict, detail) in ("\\PC*", "\\PC*", "\\PC*"),
        (steps, states) in (0u64..1_000_000, 0u64..1_000_000),
        cache in prop::sample::select(vec![CacheStatus::Hit, CacheStatus::Miss, CacheStatus::None]),
    ) {
        let response = Response { id, verdict, detail, steps, states, cache };
        let line = response.to_json();
        prop_assert!(!line.contains('\n'), "frames must be one line: {line}");
        prop_assert_eq!(decode_response(&line), Ok(response));
    }

    #[test]
    fn garbage_lines_are_rejected_not_panicked(line in "\\PC*") {
        // Printable garbage is overwhelmingly not a valid frame; either
        // way the decoder must return, never panic.
        if let Err(e) = decode_request(&line) {
            prop_assert!(!e.message().is_empty());
        }
        let _ = decode_response(&line);
    }

    #[test]
    fn truncated_valid_frames_never_panic(request in request_strategy(), cut in any::<prop::sample::Index>()) {
        let line = request.to_json();
        let mut at = cut.index(line.len());
        while !line.is_char_boundary(at) {
            at -= 1;
        }
        let _ = decode_request(&line[..at]);
    }
}

#[test]
fn oversized_frames_are_rejected_on_both_sides() {
    let mut request = Request::check("big", "x");
    request.source = "void main() { skip; } ".repeat(MAX_FRAME_BYTES / 20);
    let line = request.to_json();
    assert!(line.len() > MAX_FRAME_BYTES);
    assert!(matches!(decode_request(&line), Err(FrameError::Oversized { .. })));
    assert!(matches!(decode_response(&line), Err(FrameError::Oversized { .. })));
}
