//! Lipton-reduction atomicity analysis (the paper's reference [20] and
//! its planned mechanism for pruning benign races): classifies each
//! function as a both-mover, atomic, or not atomic, and infers which
//! shared cells are consistently lock-protected.
//!
//! ```text
//! cargo run --example atomicity
//! ```

use kiss::atom::{analyze, Atomicity};
use kiss::exec::Module;

fn main() {
    let src = r#"
        int l;
        int balance;
        int audit;

        void deposit() {
            atomic { assume l == 0; l = 1; }
            balance = balance + 10;
            atomic { l = 0; }
        }

        // Two separate critical sections: the classic non-atomic
        // read-then-write bug shape.
        void double_touch() {
            int b;
            atomic { assume l == 0; l = 1; }
            b = balance;
            atomic { l = 0; }
            atomic { assume l == 0; l = 1; }
            balance = b + 10;
            atomic { l = 0; }
        }

        void local_math() { int a; int b; a = 3; b = a * a; a = b - 1; }

        void snoop() { int t; t = balance; audit = t; }

        void main() { async deposit(); double_touch(); local_math(); snoop(); }
    "#;
    let program = kiss::parse(src).expect("valid KISS-C");
    let module = Module::lower(program.clone());
    let report = analyze(&module);

    println!("function atomicity (Lipton reduction, (R|B)* N? (L|B)*):\n");
    for (i, f) in program.funcs.iter().enumerate() {
        let verdict = report.of(kiss::lang::FuncId(i as u32));
        let note = match (f.name.as_str(), verdict) {
            ("deposit", Atomicity::Atomic) => "acquire; protected write; release — reduces",
            ("double_touch", Atomicity::NotAtomic) => {
                "two critical sections — the stale-read bug shape"
            }
            ("local_math", Atomicity::BothMover) => "purely local: commutes with everything",
            ("snoop", Atomicity::NotAtomic) => "two unprotected shared accesses",
            _ => "",
        };
        println!("  {:<14} {:?}  {}", f.name, verdict, note);
    }

    println!("\nguarded-by inference:");
    for (cell, locks) in &report.guarded_by {
        println!("  {cell:?} protected by {locks:?}");
    }
}
