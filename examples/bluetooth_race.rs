//! Paper §2.2: detecting the race on `stoppingFlag` in the Bluetooth
//! driver model of Figure 2, with `MAX = 0`.
//!
//! ```text
//! cargo run --example bluetooth_race
//! ```

use kiss::drivers::bluetooth;
use kiss::{Kiss, KissOutcome};

fn main() {
    let program = bluetooth::buggy();
    println!("Figure 2 Bluetooth model: checking DEVICE_EXTENSION.stoppingFlag for races");
    println!("(ts multiset bound MAX = 0, as in the paper)\n");

    let outcome = Kiss::new()
        .with_max_ts(0)
        .check_race_spec(&program, "DEVICE_EXTENSION.stoppingFlag")
        .expect("the field exists");

    match outcome {
        KissOutcome::RaceDetected(report) => {
            println!("race condition detected:");
            println!(
                "  first access : {} at line {}",
                if report.first.is_write { "write" } else { "read" },
                report.first.span
            );
            println!(
                "  second access: {} at line {}",
                if report.second.is_write { "write" } else { "read" },
                report.second.span
            );
            println!("  threads      : {}", report.mapped.thread_count);
            println!("  schedule     : {:?}", report.mapped.pattern);
            println!();
            println!("paper: the write in BCSP_PnpStop races with the read in");
            println!("BCSP_IoIncrement — exposed with a single thread-termination");
            println!("point (RAISE) and no pending-thread slots at all.");
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Sanity: a field never accessed concurrently shows no race.
    let outcome = Kiss::new()
        .with_max_ts(0)
        .check_race_spec(&program, "DEVICE_EXTENSION.pendingIo")
        .expect("the field exists");
    println!(
        "\ncontrol check on pendingIo (all accesses atomic): {}",
        match outcome {
            KissOutcome::NoErrorFound(_) => "no race reported".to_string(),
            other => format!("{other:?}"),
        }
    );
}
