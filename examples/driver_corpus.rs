//! Runs one synthetic driver from the Table 1 corpus through the
//! per-field race checking pipeline, under both the naive and the
//! refined OS harness — a single-driver preview of the `table1` /
//! `table2` benchmark binaries.
//!
//! ```text
//! cargo run --release --example driver_corpus [driver-name]
//! ```

use kiss::drivers::table::{check_driver, default_budget};
use kiss::drivers::{generate_driver, paper_table, FieldOutcome};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "toaster_toastmon".to_string());
    let Some(spec) = paper_table().into_iter().find(|d| d.name == name) else {
        eprintln!("unknown driver `{name}`; available:");
        for d in paper_table() {
            eprintln!("  {}", d.name);
        }
        std::process::exit(1);
    };

    println!("driver `{}` — paper: {} fields, {} KLOC", spec.name, spec.fields, spec.kloc);
    let model = generate_driver(&spec);
    println!("generated {} lines of KISS-C, {} dispatch routines\n", model.loc, model.routine_category.len());

    for (mode, refined) in [("naive harness (Table 1)", false), ("refined harness (Table 2)", true)] {
        println!("== {mode} ==");
        let result = check_driver(&model, refined, default_budget());
        for r in &result.results {
            let field = &model.fields[r.field];
            println!(
                "  {:<6} seeded {:<9} -> {:?}",
                field.name,
                format!("{:?}", field.class),
                r.outcome
            );
        }
        println!(
            "  races: {}  no-races: {}  inconclusive: {}\n",
            result.races, result.no_races, result.inconclusive
        );
        let _ = FieldOutcome::Race; // re-exported type used above
    }
    println!("paper row: races {} (naive) / {} (refined)", spec.races_naive, spec.races_refined);
}
