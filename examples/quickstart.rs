//! Quickstart: check a tiny concurrent program with KISS.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kiss::{Kiss, KissOutcome};

fn main() {
    // A two-thread program with an assertion that only fails if the
    // forked thread runs between main's fork and its assert.
    let src = r#"
        int g;

        void other() {
            g = 1;
        }

        void main() {
            async other();
            assert g == 0;
        }
    "#;
    let program = kiss::parse(src).expect("valid KISS-C");

    println!("checking with KISS (MAX = 0)...");
    match Kiss::new().check_assertions(&program) {
        KissOutcome::AssertionViolation(report) => {
            println!("assertion violation found!");
            println!("  threads involved : {}", report.mapped.thread_count);
            println!("  schedule pattern : {:?}", report.mapped.pattern);
            println!("  context switches : {}", report.mapped.context_switches);
            println!("  replay-validated : {:?}", report.validated);
            println!("  concurrent trace (thread, source line:col):");
            for step in &report.mapped.steps {
                println!("    thread {} @ {}", step.tid, step.span);
            }
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // The same check on the repaired program passes.
    let fixed = kiss::parse(
        r#"
        int g;
        void other() { g = 1; }
        void main() { async other(); assert g <= 1; }
    "#,
    )
    .expect("valid KISS-C");
    match Kiss::new().check_assertions(&fixed) {
        KissOutcome::NoErrorFound(stats) => {
            println!("\nfixed program: no error found ({} states explored)", stats.states());
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
