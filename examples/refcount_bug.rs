//! Paper §2.3 and §6: the reference-counting assertion violation in
//! the Bluetooth driver. The bug needs the stopping thread to run *in
//! the middle of* `BCSP_IoIncrement` — a suspend/resume the `ts`
//! multiset can only simulate with `MAX >= 1`.
//!
//! ```text
//! cargo run --example refcount_bug
//! ```

use kiss::drivers::bluetooth;
use kiss::{Kiss, KissOutcome};

fn main() {
    let buggy = bluetooth::buggy();
    println!("Figure 2 Bluetooth model: checking `assert !stopped`\n");

    for max_ts in 0..=1 {
        print!("MAX = {max_ts}: ");
        match Kiss::new().with_max_ts(max_ts).check_assertions(&buggy) {
            KissOutcome::NoErrorFound(stats) => {
                println!("no error found ({} states) — as the paper predicts", stats.states());
            }
            KissOutcome::AssertionViolation(report) => {
                println!("assertion violation!");
                println!("  threads          : {}", report.mapped.thread_count);
                println!("  schedule pattern : {:?}", report.mapped.pattern);
                println!("  replay-validated : {:?}", report.validated);
                println!("  concurrent trace:");
                for step in &report.mapped.steps {
                    println!("    thread {} @ line {}", step.tid, step.span);
                }
            }
            other => println!("unexpected: {other:?}"),
        }
    }

    println!("\nafter the driver quality team's fix (increment before flag check):");
    let fixed = bluetooth::fixed();
    for max_ts in 0..=2 {
        let outcome = Kiss::new().with_max_ts(max_ts).check_assertions(&fixed);
        println!(
            "  MAX = {max_ts}: {}",
            if outcome.is_clean() { "no error found" } else { "ERROR (unexpected)" }
        );
    }
}
