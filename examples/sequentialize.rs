//! Shows the KISS transformation itself: a concurrent program and the
//! sequential program `Check(s)` it becomes, pretty-printed as
//! KISS-C (paper Figure 4).
//!
//! ```text
//! cargo run --example sequentialize
//! ```

use kiss::{transform, TransformConfig};

fn main() {
    let src = r#"
        int g;

        void worker() {
            g = g + 1;
        }

        void main() {
            async worker();
            assert g <= 1;
        }
    "#;
    let program = kiss::parse(src).expect("valid KISS-C");

    println!("=== original concurrent program ===\n");
    println!("{}", kiss::lang::pretty::print_program(&program));

    let t = transform(&program, &TransformConfig { max_ts: 1, ..Default::default() })
        .expect("transform succeeds");

    println!("=== sequential program Check(s), MAX = 1 ===\n");
    println!("{}", kiss::lang::pretty::print_program(&t.program));

    println!("=== what to look for ===");
    println!("* `__raise` + the `choice {{ skip [] __raise = true; return; }}`");
    println!("  prologue before every statement: nondeterministic thread");
    println!("  termination (RAISE);");
    println!("* `if (__raise) return` after calls: exception propagation;");
    println!("* `__ts0_fn` / `__ts0_argc`: the ts multiset slot; the async");
    println!("  becomes a store into the free slot, or an inline call when full;");
    println!("* `__schedule()`: pops and runs pending threads at every point;");
    println!("* `__kiss_main`: the Check(s) wrapper (init; [[main]]; schedule()).");
}
