//! # KISS: Keep It Simple and Sequential
//!
//! A Rust reproduction of *KISS: Keep It Simple and Sequential*
//! (Shaz Qadeer and Dinghao Wu, PLDI 2004): an assertion and race
//! checker for concurrent programs that works by **sequentialization**
//! — transforming the concurrent program into a sequential one that
//! simulates its stack-disciplined (balanced) interleavings, then
//! running an off-the-shelf sequential checker.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`lang`] | `kiss-lang` | the KISS-C language: parser, core IR, printer |
//! | [`exec`] | `kiss-exec` | values, memory, flat CFG, evaluator |
//! | [`seq`]  | `kiss-seq`  | sequential checkers (the SLAM stand-in) |
//! | [`conc`] | `kiss-conc` | interleaving explorer, balanced schedules, dynamic checker |
//! | [`alias`]| `kiss-alias`| unification points-to analysis |
//! | [`atom`] | `kiss-atom` | Lipton-reduction atomicity analysis (ref \[20\]) |
//! | [`core`] | `kiss-core` | **the KISS transformation**, trace back-mapping, checker |
//! | [`ltl`]  | `kiss-ltl`  | LTL liveness: formulas, Büchi tableau, product exploration |
//! | [`obs`]  | `kiss-obs`  | structured events, run reports, trace/metrics sinks |
//! | [`fault`] | `kiss-fault` | deterministic failpoints for robustness testing |
//! | [`serve`] | `kiss-serve` | check service: wire protocol, result cache, server, client |
//! | [`drivers`] | `kiss-drivers` | Bluetooth model, OS stubs, 18-driver corpus |
//! | [`samples`] | `kiss-samples` | classic concurrency algorithms with ground-truth verdicts |
//!
//! ## Quickstart
//!
//! ```
//! use kiss::{Kiss, KissOutcome};
//!
//! let program = kiss::parse(r#"
//!     int g;
//!     void other() { g = 1; }
//!     void main() { async other(); assert g == 0; }
//! "#).expect("valid KISS-C");
//!
//! match Kiss::new().check_assertions(&program) {
//!     KissOutcome::AssertionViolation(report) => {
//!         // The error trace is mapped back to a concurrent schedule
//!         // and validated by replaying it on the original program.
//!         assert_eq!(report.validated, Some(true));
//!         assert_eq!(report.mapped.thread_count, 2);
//!     }
//!     other => panic!("expected a violation, got {other:?}"),
//! }
//! ```

pub use kiss_alias as alias;
pub use kiss_atom as atom;
pub use kiss_conc as conc;
pub use kiss_core as core;
pub use kiss_drivers as drivers;
pub use kiss_exec as exec;
pub use kiss_fault as fault;
pub use kiss_obs as obs;
pub use kiss_samples as samples;
pub use kiss_lang as lang;
pub use kiss_ltl as ltl;
pub use kiss_seq as seq;
pub use kiss_serve as serve;

pub use kiss_core::checker::{Engine, ErrorReport, Kiss, KissOutcome, LivenessReport, RaceReport};
pub use kiss_core::transform::{transform, RaceTarget, TransformConfig, Transformed};
pub use kiss_lang::{LangError, Program};
pub use kiss_seq::Budget;

/// Parses and lowers KISS-C source into a checked core program.
///
/// # Errors
///
/// Returns the first lexing, parsing, lowering or well-formedness
/// error.
pub fn parse(src: &str) -> Result<Program, LangError> {
    kiss_lang::parse_and_lower(src)
}
