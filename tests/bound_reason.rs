//! Property tests for the stable string encoding of
//! [`BoundReason`] — the journal and the observability layer both
//! round-trip bound reasons through `as_str`/`parse`, so the encoding
//! must be total, injective, and stable.

use proptest::prelude::*;

use kiss::seq::BoundReason;

const ALL: [BoundReason; 5] = [
    BoundReason::Steps,
    BoundReason::States,
    BoundReason::Deadline,
    BoundReason::Memory,
    BoundReason::Cancelled,
];

/// Strings `parse` must accept, in the same order as [`ALL`].
const NAMES: [&str; 5] = ["steps", "states", "deadline", "memory", "cancelled"];

/// Candidate inputs biased toward interesting near-misses: every valid
/// name plus casing, whitespace, truncation, and extension variants.
const CANDIDATES: &[&str] = &[
    "steps", "states", "deadline", "memory", "cancelled", "Steps", "STATES", " deadline",
    "memory ", "cancel", "cancelledd", "step", "state", "", "stePs", "dead-line",
];

#[test]
fn every_reason_round_trips() {
    for (reason, name) in ALL.iter().zip(NAMES) {
        assert_eq!(reason.as_str(), name);
        assert_eq!(BoundReason::parse(name), Some(*reason));
        // Display and as_str agree: journals use both interchangeably.
        assert_eq!(reason.to_string(), name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// `parse` is exactly the inverse of `as_str`: it accepts a string
    /// iff it is one of the five stable names, and maps it back to the
    /// variant that produced it.
    #[test]
    fn parse_inverts_as_str(s in "\\PC*", pick in any::<prop::sample::Index>()) {
        // Biased candidates exercise the `Some` branch every run; the
        // random string mostly exercises the `None` branch.
        for input in [CANDIDATES[pick.index(CANDIDATES.len())], s.as_str()] {
            match BoundReason::parse(input) {
                Some(reason) => prop_assert_eq!(reason.as_str(), input),
                None => prop_assert!(!NAMES.contains(&input)),
            }
        }
    }
}
