//! End-to-end integration tests across crates: frontend →
//! transformation → both sequential engines → trace back-mapping →
//! concurrent validation, plus printer round-trips of transformed
//! programs.

use kiss::exec::Module;
use kiss::seq::{ExplicitChecker, SummaryChecker};
use kiss::{transform, Engine, Kiss, KissOutcome, TransformConfig};

const PROGRAMS: &[(&str, bool)] = &[
    // (source, has_reachable_assertion_failure_under_kiss_max2)
    (
        "int g; void w() { g = 1; } void main() { async w(); assert g == 0; }",
        true,
    ),
    (
        "int g; void w() { g = 1; } void main() { async w(); assert g <= 1; }",
        false,
    ),
    (
        "int a; int b;
         void w() { a = 1; b = 1; }
         void main() { int t; async w(); t = b; if (t == 1) { assert a == 1; } }",
        false, // b is written after a: seeing b==1 implies a==1 in every interleaving
    ),
    (
        "int a; int b;
         void w() { b = 1; a = 1; }
         void main() { int t; async w(); t = b; if (t == 1) { assert a == 1; } }",
        true, // order flipped: b==1 can be observed before a==1
    ),
    (
        "int l; int g;
         void w() { atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } }
         void main() { async w(); atomic { assume l == 0; l = 1; } g = g + 1; atomic { l = 0; } assert g <= 2; }",
        false,
    ),
];

#[test]
fn explicit_and_summary_engines_agree_end_to_end() {
    for (src, expect_fail) in PROGRAMS {
        let program = kiss::parse(src).expect("valid program");
        let explicit =
            Kiss::new().with_max_ts(2).with_validation(false).check_assertions(&program);
        let summary = Kiss::new()
            .with_max_ts(2)
            .with_validation(false)
            .with_engine(Engine::Summary)
            .check_assertions(&program);
        assert_eq!(explicit.found_error(), *expect_fail, "explicit on {src}: {explicit:?}");
        assert_eq!(summary.found_error(), *expect_fail, "summary on {src}: {summary:?}");
    }
}

#[test]
fn every_reported_error_validates_against_the_concurrent_program() {
    for (src, expect_fail) in PROGRAMS {
        if !expect_fail {
            continue;
        }
        let program = kiss::parse(src).expect("valid program");
        let outcome = Kiss::new().with_max_ts(2).check_assertions(&program);
        let KissOutcome::AssertionViolation(report) = outcome else {
            panic!("expected violation on {src}");
        };
        assert_eq!(report.validated, Some(true), "replay failed on {src}");
        // The schedule is balanced (Theorem 1's simulated executions).
        assert!(kiss::conc::is_balanced(&report.mapped.schedule));
    }
}

#[test]
fn transformed_programs_round_trip_through_the_printer() {
    for (src, _) in PROGRAMS {
        let program = kiss::parse(src).expect("valid program");
        for max_ts in [0, 1, 2] {
            let t = transform(&program, &TransformConfig { max_ts, ..Default::default() })
                .expect("transform succeeds");
            let text = kiss::lang::pretty::print_program(&t.program);
            let reparsed = kiss::parse(&text)
                .unwrap_or_else(|e| panic!("transformed output must reparse: {e}\n{text}"));
            // Reparsed and original transformed program agree on
            // verdicts.
            let v1 = ExplicitChecker::new(&Module::lower(t.program.clone())).check();
            let v2 = ExplicitChecker::new(&Module::lower(reparsed)).check();
            assert_eq!(v1.is_fail(), v2.is_fail(), "printer changed behaviour on {src}");
        }
    }
}

#[test]
fn direct_engine_use_matches_facade_outcomes() {
    let (src, _) = PROGRAMS[0];
    let program = kiss::parse(src).expect("valid program");
    let t = transform(&program, &TransformConfig::default()).expect("ok");
    let module = Module::lower(t.program);
    let explicit = ExplicitChecker::new(&module).check();
    let summary = SummaryChecker::new(&module).check();
    assert!(explicit.is_fail());
    assert!(summary.is_fail());
}

#[test]
fn corpus_driver_end_to_end_sample() {
    // One small driver through the whole Table-1 pipeline.
    let spec = kiss::drivers::paper_table().into_iter().find(|d| d.name == "imca").unwrap();
    let model = kiss::drivers::generate_driver(&spec);
    let naive = kiss::drivers::check_driver(&model, false, kiss::drivers::table::default_budget());
    assert_eq!(naive.races, spec.races_naive);
    assert_eq!(naive.no_races, spec.no_races);
    let refined = kiss::drivers::check_driver(&model, true, kiss::drivers::table::default_budget());
    assert_eq!(refined.races, spec.races_refined);
}

#[test]
fn race_reports_cite_two_distinct_sites() {
    let src = "
        struct D { int f; }
        D *e;
        void w() { e->f = 1; }
        void rd() { int t; t = e->f; }
        void main() { e = malloc(D); async w(); rd(); }
    ";
    let program = kiss::parse(src).expect("valid program");
    let outcome = Kiss::new().check_race_spec(&program, "D.f").expect("spec resolves");
    let KissOutcome::RaceDetected(report) = outcome else {
        panic!("expected race, got {outcome:?}");
    };
    assert!(report.first.is_write != report.second.is_write, "read/write race");
    assert_ne!(report.first.span.line, report.second.span.line);
}

#[test]
fn alias_pruning_does_not_change_race_verdicts() {
    let sources = [
        "struct D { int f; int g; } D *e;
         void w() { e->f = 1; e->g = 2; }
         void rd() { int t; t = e->f; }
         void main() { e = malloc(D); async w(); rd(); }",
        "struct D { int f; int g; } D *e; int l;
         void w() { atomic { assume l == 0; l = 1; } e->f = 1; atomic { l = 0; } }
         void rd() { int t; atomic { assume l == 0; l = 1; } t = e->f; atomic { l = 0; } }
         void main() { e = malloc(D); async w(); rd(); }",
    ];
    for src in sources {
        let program = kiss::parse(src).expect("valid program");
        let with = Kiss::new().with_alias_prune(true).check_race_spec(&program, "D.f").unwrap();
        let without = Kiss::new().with_alias_prune(false).check_race_spec(&program, "D.f").unwrap();
        assert_eq!(
            matches!(with, KissOutcome::RaceDetected(_)),
            matches!(without, KissOutcome::RaceDetected(_)),
            "pruning changed the verdict on {src}"
        );
    }
}
