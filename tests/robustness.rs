//! Robustness and soundness properties.
//!
//! * The frontend (lexer, parser, lowering, well-formedness) never
//!   panics — it returns `Err` on malformed input, including arbitrary
//!   bytes and mutated valid programs.
//! * The alias analysis is sound with respect to actual execution: for
//!   every (pointer, cell) pair it *clears*, an injected
//!   `assert p != &cell` is proved by exhaustive sequential
//!   exploration.

use proptest::prelude::*;

use kiss::alias::{AbsLoc, AliasAnalysis};
use kiss::exec::Module;
use kiss::seq::ExplicitChecker;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Arbitrary strings never panic the pipeline.
    #[test]
    fn frontend_never_panics_on_arbitrary_input(s in "\\PC*") {
        let _ = kiss::parse(&s);
    }

    /// Arbitrary ASCII soups built from language tokens never panic.
    #[test]
    fn frontend_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "int", "bool", "void", "struct", "if", "else", "while", "choice", "iter",
                "atomic", "assert", "assume", "async", "return", "skip", "malloc", "benign",
                "{", "}", "(", ")", ";", ",", "=", "==", "!=", "[]", "->", "&", "*", "+",
                "-", "!", "x", "y", "main", "f", "0", "1", "42",
            ]),
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = kiss::parse(&src);
    }

    /// Mutating one byte of a valid program never panics the pipeline.
    #[test]
    fn frontend_never_panics_on_mutated_valid_program(pos in 0usize..400, byte in 0u8..128) {
        let base = "
            struct D { int f; }
            D *e;
            int g;
            void w(D *p) { p->f = 1; }
            void main() {
                int t;
                e = malloc(D);
                async w(e);
                t = e->f;
                if (t == 1) { assert g == 0; }
            }
        ";
        let mut bytes = base.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(src) = String::from_utf8(bytes) {
            let _ = kiss::parse(&src);
        }
    }
}

/// For each async-free corpus program: every (global pointer, global
/// target) pair the alias analysis clears is backed by an injected
/// assertion proved by the exhaustive sequential checker. A wrong "no"
/// claim would fail the assert and this test.
#[test]
fn alias_no_claims_are_sound_at_runtime() {
    // (program body, where `main` ends before the closing brace)
    let sources = [
        "int r; int other; int *p; int *q;
         void main() { p = &r; q = &other; *p = 1; *q = 2; INJECT }",
        "int r; int s; int *p; int *q;
         void main() { int c; choice { p = &r; [] p = &s; } q = p; INJECT }",
        "int r; int s; int *p; int *q; int *z;
         void pick() { choice { p = &r; [] q = &r; } }
         void main() { z = &s; pick(); INJECT }",
    ];
    let mut total_claims = 0usize;
    for template in sources {
        let plain = template.replace("INJECT", "skip;");
        let program = kiss::parse(&plain).unwrap();
        let mut analysis = AliasAnalysis::run(&program);

        // Find cleared (pointer global, target global) pairs among the
        // declared pointer globals.
        let mut checks = String::new();
        let mut decls = String::new();
        let mut n = 0usize;
        for (pi, pdef) in program.globals.iter().enumerate() {
            let is_ptr = matches!(pdef.ty, Some(kiss::lang::hir::Type::Ptr(_)));
            if !is_ptr {
                continue;
            }
            let pvar = kiss::lang::hir::VarRef::Global(kiss::lang::GlobalId(pi as u32));
            for (ti, tdef) in program.globals.iter().enumerate() {
                if pi == ti || matches!(tdef.ty, Some(kiss::lang::hir::Type::Ptr(_))) {
                    continue;
                }
                let target = AbsLoc::Global(kiss::lang::GlobalId(ti as u32));
                if !analysis.deref_may_touch(program.main, pvar, target) {
                    // Injected proof obligation: p never holds &target.
                    checks.push_str(&format!(
                        "__chk{n} = &{t}; __ne{n} = {p} != __chk{n}; assert __ne{n};\n",
                        t = tdef.name,
                        p = pdef.name,
                    ));
                    decls.push_str(&format!("int *__chk{n};\nbool __ne{n};\n"));
                    n += 1;
                }
            }
        }
        total_claims += n;
        if n == 0 {
            continue;
        }
        let injected = format!("{decls}{}", template.replace("INJECT", &checks));
        let checked = kiss::parse(&injected)
            .unwrap_or_else(|e| panic!("injected program invalid: {e}\n{injected}"));
        let module = Module::lower(checked);
        let verdict = ExplicitChecker::new(&module).check();
        assert!(
            verdict.is_pass(),
            "alias analysis made an unsound `no` claim:\n{injected}\nverdict: {verdict:?}"
        );
    }
    assert!(total_claims >= 3, "the corpus must exercise real `no` claims ({total_claims})");
}

/// The other direction, as a sanity check (not a soundness
/// requirement): a pointer that plainly does alias must not be cleared.
#[test]
fn alias_does_not_clear_obvious_aliases() {
    let src = "int r; int *p; void main() { p = &r; *p = 1; }";
    let program = kiss::parse(src).unwrap();
    let mut analysis = AliasAnalysis::run(&program);
    let p = kiss::lang::hir::VarRef::Global(program.global_by_name("p").unwrap());
    let r = AbsLoc::Global(program.global_by_name("r").unwrap());
    assert!(analysis.deref_may_touch(program.main, p, r));
}
