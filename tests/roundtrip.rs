//! Property test: pretty-printing a core program yields source that
//! re-parses to a behaviourally identical program, and printing is
//! idempotent after one round trip.

use proptest::prelude::*;

use kiss::exec::Module;
use kiss::seq::ExplicitChecker;

/// Statement fragments combined into random single-function programs.
/// The fragments use globals `a`, `b` (ints), `c` (bool), a struct
/// pointer `e`, and the local `t`.
const FRAGMENTS: &[&str] = &[
    "a = 1;",
    "b = a + 2;",
    "c = a == b;",
    "t = a;",
    "a = t - 1;",
    "e = malloc(D);",
    "e->x = a;",
    "t = e->x;",
    "if (c) { a = 2; } else { b = 3; }",
    "while (a < 2) { a = a + 1; }",
    "choice { a = 4; [] b = 5; }",
    "iter { t = t + 1; assume t <= 2; }",
    "atomic { a = a + 1; b = b - 1; }",
    "assert a != 99;",
    "assume a >= -100;",
    "skip;",
];

fn program_from(indices: &[prop::sample::Index]) -> String {
    let mut body = String::new();
    for idx in indices {
        body.push_str(FRAGMENTS[idx.index(FRAGMENTS.len())]);
        body.push('\n');
    }
    format!(
        "struct D {{ int x; }}\nint a;\nint b;\nbool c;\nD *e;\n\
         void main() {{\nint t;\ne = malloc(D);\n{body}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_print_is_stable(indices in prop::collection::vec(any::<prop::sample::Index>(), 1..10)) {
        let src = program_from(&indices);
        let p1 = kiss::parse(&src).expect("fragment programs are valid");
        let text1 = kiss::lang::pretty::print_program(&p1);
        let p2 = kiss::parse(&text1)
            .unwrap_or_else(|e| panic!("printed program must reparse: {e}\n{text1}"));
        let text2 = kiss::lang::pretty::print_program(&p2);
        let p3 = kiss::parse(&text2).expect("reparse of stable text");
        let text3 = kiss::lang::pretty::print_program(&p3);
        prop_assert_eq!(text2, text3, "printing must be idempotent after one round trip");
    }

    #[test]
    fn round_trip_preserves_verdicts(indices in prop::collection::vec(any::<prop::sample::Index>(), 1..10)) {
        let src = program_from(&indices);
        let p1 = kiss::parse(&src).expect("fragment programs are valid");
        let text = kiss::lang::pretty::print_program(&p1);
        let p2 = kiss::parse(&text).expect("printed program must reparse");
        let v1 = ExplicitChecker::new(&Module::lower(p1)).check();
        let v2 = ExplicitChecker::new(&Module::lower(p2)).check();
        prop_assert_eq!(v1.is_fail(), v2.is_fail());
        prop_assert_eq!(v1.is_pass(), v2.is_pass());
    }
}
