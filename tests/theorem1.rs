//! Property-based test of the paper's Theorem 1 (Completeness):
//!
//! > Suppose the multiset `ts` is unbounded. If a balanced execution of
//! > a concurrent program `s` goes wrong by failing an assertion, then
//! > the sequential program `Check(s)` also goes wrong, and vice versa.
//!
//! We generate random small concurrent programs (no loops, bounded
//! forks, so `MAX = 2` behaves as an unbounded `ts`), and check both
//! directions against the ground-truth interleaving explorer of
//! `kiss-conc` restricted to balanced (stack-disciplined) schedules.

use proptest::prelude::*;

use kiss::conc::{Explorer, ScheduleMode};
use kiss::exec::Module;
use kiss::Kiss;

/// A tiny statement language rendered to KISS-C text.
#[derive(Debug, Clone)]
enum S {
    Set(u8, i8),
    AddFrom(u8, u8, i8),
    Assert(u8, i8, bool),
    If(u8, i8, Box<S>, Box<S>),
    Choice(Box<S>, Box<S>),
    Seq(Box<S>, Box<S>),
    Atomic(Box<S>),
    CallHelper,
    Skip,
}

impl S {
    fn render(&self, out: &mut String) {
        match self {
            S::Set(g, c) => out.push_str(&format!("g{} = {};\n", g % 3, c)),
            S::AddFrom(g, h, c) => {
                out.push_str(&format!("g{} = g{} + {};\n", g % 3, h % 3, c))
            }
            S::Assert(g, c, eq) => out.push_str(&format!(
                "assert g{} {} {};\n",
                g % 3,
                if *eq { "==" } else { "!=" },
                c
            )),
            S::If(g, c, t, e) => {
                out.push_str(&format!("if (g{} == {}) {{\n", g % 3, c));
                t.render(out);
                out.push_str("} else {\n");
                e.render(out);
                out.push_str("}\n");
            }
            S::Choice(a, b) => {
                out.push_str("choice {\n");
                a.render(out);
                out.push_str("[]\n");
                b.render(out);
                out.push_str("}\n");
            }
            S::Seq(a, b) => {
                a.render(out);
                b.render(out);
            }
            S::Atomic(inner) => {
                out.push_str("atomic {\n");
                inner.render_atomic(out);
                out.push_str("}\n");
            }
            S::CallHelper => out.push_str("helper();\n"),
            S::Skip => out.push_str("skip;\n"),
        }
    }

    /// Renders inside an `atomic` block: calls and nested atomics are
    /// forbidden by well-formedness, so they degrade to plain updates;
    /// composites recurse in atomic mode.
    fn render_atomic(&self, out: &mut String) {
        match self {
            S::Atomic(inner) => inner.render_atomic(out),
            S::CallHelper => out.push_str("g0 = g0 + 1;\n"),
            S::Seq(a, b) => {
                a.render_atomic(out);
                b.render_atomic(out);
            }
            S::Choice(a, b) => {
                out.push_str("choice {\n");
                a.render_atomic(out);
                out.push_str("[]\n");
                b.render_atomic(out);
                out.push_str("}\n");
            }
            S::If(g, c, t, e) => {
                out.push_str(&format!("if (g{} == {}) {{\n", g % 3, c));
                t.render_atomic(out);
                out.push_str("} else {\n");
                e.render_atomic(out);
                out.push_str("}\n");
            }
            other => other.render(out),
        }
    }
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        (any::<u8>(), -2i8..3).prop_map(|(g, c)| S::Set(g, c)),
        (any::<u8>(), any::<u8>(), -1i8..2).prop_map(|(g, h, c)| S::AddFrom(g, h, c)),
        (any::<u8>(), -1i8..3, any::<bool>()).prop_map(|(g, c, e)| S::Assert(g, c, e)),
        Just(S::Skip),
    ];
    let leaf = prop_oneof![leaf, Just(S::CallHelper)];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (any::<u8>(), 0i8..2, inner.clone(), inner.clone())
                .prop_map(|(g, c, t, e)| S::If(g, c, Box::new(t), Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| S::Choice(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| S::Seq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| S::Atomic(Box::new(a))),
        ]
    })
}

/// Renders a whole program: two workers, a main that forks both and
/// runs its own statements interleaved with a synchronous call.
fn render_program(w1: &S, w2: &S, m1: &S, m2: &S) -> String {
    let mut src = String::from("int g0;\nint g1;\nint g2;\n");
    src.push_str("void helper() {\ng2 = g2 + 1;\nif (g2 == 3) { g1 = g0; }\n}\n");
    src.push_str("void w1() {\n");
    w1.render(&mut src);
    src.push_str("}\nvoid w2() {\n");
    w2.render(&mut src);
    src.push_str("}\nvoid main() {\nasync w1();\n");
    m1.render(&mut src);
    src.push_str("async w2();\n");
    m2.render(&mut src);
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, max_shrink_iters: 200, ..ProptestConfig::default() })]

    /// Both directions of Theorem 1 on random programs.
    #[test]
    fn kiss_errs_iff_a_balanced_execution_errs(
        w1 in stmt_strategy(),
        w2 in stmt_strategy(),
        m1 in stmt_strategy(),
        m2 in stmt_strategy(),
    ) {
        let src = render_program(&w1, &w2, &m1, &m2);
        let program = kiss::parse(&src).expect("generated programs are well-formed");

        // Ground truth: balanced-schedule exploration of the original
        // concurrent program.
        let module = Module::lower(program.clone());
        let conc = Explorer::new(&module)
            .with_mode(ScheduleMode::Balanced)
            .with_budget(3_000_000, 300_000)
            .check();
        prop_assume!(!matches!(conc, kiss::conc::ConcVerdict::ResourceBound { .. }));
        let balanced_fails = conc.is_fail();

        // KISS with ts effectively unbounded (2 forks, MAX = 2).
        let outcome = Kiss::new()
            .with_max_ts(2)
            .with_validation(false)
            .check_assertions(&program);
        prop_assume!(!outcome.is_inconclusive());
        let kiss_fails = outcome.found_error();

        prop_assert_eq!(
            kiss_fails,
            balanced_fails,
            "Theorem 1 violated on:\n{}\nconc: {:?}\nkiss: {:?}",
            src, conc, outcome
        );
    }

    /// The weaker soundness direction against *free* exploration: a
    /// KISS-reported error is reproducible under some interleaving —
    /// "our technique never reports false errors".
    #[test]
    fn kiss_never_reports_false_errors(
        w1 in stmt_strategy(),
        m1 in stmt_strategy(),
        max_ts in 0usize..3,
    ) {
        let mut src = String::from("int g0;\nint g1;\nint g2;\n");
        src.push_str("void helper() {\ng2 = g2 + 1;\nif (g2 == 3) { g1 = g0; }\n}\n");
        src.push_str("void w1() {\n");
        w1.render(&mut src);
        src.push_str("}\nvoid main() {\nasync w1();\n");
        m1.render(&mut src);
        src.push_str("}\n");
        let program = kiss::parse(&src).expect("generated programs are well-formed");

        let outcome = Kiss::new()
            .with_max_ts(max_ts)
            .with_validation(false)
            .check_assertions(&program);
        if outcome.found_error() {
            let module = Module::lower(program);
            let conc = Explorer::new(&module)
                .with_budget(3_000_000, 300_000)
                .check();
            prop_assert!(
                conc.is_fail(),
                "KISS reported an error no interleaving exhibits:\n{}\nconc: {:?}",
                src, conc
            );
        }
    }
}
