//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace patches `criterion` to this local implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It implements the
//! subset the workspace's benches use — `Criterion::default()`,
//! `sample_size`, `bench_function`, `benchmark_group`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — with simple
//! wall-clock timing and mean/min/max reporting instead of criterion's
//! statistical analysis.

use std::time::{Duration, Instant};

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    /// Ends the group. (No-op; provided for API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup iteration.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!("{name:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}");
}

/// Re-export so existing `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // One warmup + three timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        let mut hits = 0usize;
        g.bench_function("a", |b| b.iter(|| hits += 1));
        g.bench_function("b", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 6);
    }
}
