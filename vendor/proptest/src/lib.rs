//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace patches `proptest` to this local implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It implements the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `prop_recursive`;
//! * strategies for integer ranges, tuples, `bool`/integer `any`,
//!   [`Just`], string regex literals (interpreted loosely as "some
//!   printable string"), `collection::vec`, `sample::Index`, and
//!   `sample::select`;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from real proptest: generation is **deterministic** per
//! test (a fixed seed mixed with the case index) and there is **no
//! shrinking** — a failing case panics with the debug-printed inputs.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator used for value generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for one test case: a fixed base seed mixed with the
    /// test name hash and the case index, so runs are reproducible.
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        let mut sm = 0x5EED_CAFE_F00D_D00Du64 ^ name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// How one generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case.
    Reject(String),
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (see [`TestCaseError::Reject`]).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (see [`TestCaseError::Fail`]).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type the `proptest!` body desugars to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator (subset of proptest's `Strategy`).
///
/// Unlike real proptest there is no intermediate `ValueTree`; a
/// strategy directly produces values and failing inputs are not shrunk.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O + 'static>(self, f: F) -> BoxedStrategy<O>
    where
        Self: 'static,
    {
        let inner = self.boxed();
        BoxedStrategy::new(move |rng| f(inner.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse`
    /// wraps an inner strategy into a composite, up to `depth` levels.
    /// (`_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/a);
impl_tuple_strategy!(A/a, B/b);
impl_tuple_strategy!(A/a, B/b, C/c);
impl_tuple_strategy!(A/a, B/b, C/c, D/d);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

/// A string literal used as a strategy stands for its regex in real
/// proptest; here it loosely generates printable strings (ASCII mixed
/// with some multi-byte characters), which is what the workspace's
/// fuzz-style tests need from patterns like `"\\PC*"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(8) {
                0..=5 => char::from(32 + rng.below(95) as u8), // printable ASCII
                6 => char::from_u32(0xA1 + rng.below(0xFF) as u32).unwrap_or('ß'),
                _ => ['λ', 'Ж', '中', '🦀', 'ß', 'ç'][rng.below(6)],
            };
            out.push(c);
        }
        out
    }
}

/// Values generatable via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Bound on consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65536 }
    }
}

/// Strategy collections (`prop::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy + 'static>(
        element: S,
        len: std::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy::new(move |rng: &mut TestRng| {
            let n = len.clone().generate(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, BoxedStrategy, TestRng};
    use std::fmt::Debug;

    /// An index into a collection whose size is only known later.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// This index reduced into `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }

    /// Uniformly selects one element of `options`.
    pub fn select<T: Clone + Debug + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "cannot select from no options");
        BoxedStrategy::new(move |rng: &mut TestRng| options[rng.below(options.len())].clone())
    }
}

/// The `proptest::prelude` the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop::` module alias used as `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs one property test: generates up to `config.cases` accepted
/// cases, skipping `prop_assume!` rejections, and panics on failure.
/// This is the runtime behind the [`proptest!`] macro.
pub fn run_property_test<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::for_case(name_hash, stream);
        stream += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case #{accepted}: {msg}");
            }
        }
    }
}

/// The `proptest!` macro: one or more `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property_test(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(
                format!("{}\n  left: `{:?}`\n right: `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks one of several strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let strats = vec![$($crate::Strategy::boxed($strat)),+];
        $crate::BoxedStrategy::new(move |rng: &mut $crate::TestRng| {
            let i = rng.below(strats.len());
            $crate::Strategy::generate(&strats[i], rng)
        })
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(-2i8..3), &mut rng);
            assert!((-2..3).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case(2, 2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = any::<u8>().prop_map(T::Leaf).prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::TestRng::for_case(3, 3);
        for _ in 0..50 {
            assert!(depth(&crate::Strategy::generate(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..50, v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(v.len() <= 3, true);
        }
    }
}
