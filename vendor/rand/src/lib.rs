//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace patches `rand` to this local implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides exactly
//! the subset the workspace uses — `StdRng::seed_from_u64` and
//! `Rng::gen_range` over integer ranges — with a deterministic
//! xoshiro256** generator, so seeded runs remain reproducible.

use std::ops::Range;

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types that can be sampled (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-3i8..4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
